package seccache

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"shield/internal/crypt"
	"shield/internal/kds"
	"shield/internal/vfs"
)

func mustDEK(t *testing.T) crypt.DEK {
	t.Helper()
	dek, err := crypt.NewDEK()
	if err != nil {
		t.Fatal(err)
	}
	return dek
}

func TestPutGetDelete(t *testing.T) {
	fs := vfs.NewMem()
	c, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	dek := mustDEK(t)
	if err := c.Put("dek-1", dek); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("dek-1")
	if err != nil {
		t.Fatal(err)
	}
	if got != dek {
		t.Fatal("round trip mismatch")
	}
	if _, err := c.Get("dek-2"); !errors.Is(err, ErrNotCached) {
		t.Fatalf("want ErrNotCached, got %v", err)
	}
	if err := c.Delete("dek-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("dek-1"); !errors.Is(err, ErrNotCached) {
		t.Fatalf("deleted key still present: %v", err)
	}
	// Deleting a missing key is a no-op.
	if err := c.Delete("dek-1"); err != nil {
		t.Fatal(err)
	}
}

func TestPersistsAcrossReopen(t *testing.T) {
	fs := vfs.NewMem()
	c, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	deks := make(map[kds.KeyID]crypt.DEK)
	for i := 0; i < 50; i++ {
		id := kds.KeyID(fmt.Sprintf("dek-%03d", i))
		deks[id] = mustDEK(t)
		if err := c.Put(id, deks[id]); err != nil {
			t.Fatal(err)
		}
	}

	c2, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 50 {
		t.Fatalf("reopened with %d entries", c2.Len())
	}
	for id, want := range deks {
		got, err := c2.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if got != want {
			t.Fatalf("DEK %s corrupted across reopen", id)
		}
	}
}

func TestWrongPasskeyFailsClosed(t *testing.T) {
	fs := vfs.NewMem()
	c, err := Open(fs, "cache.bin", []byte("correct"))
	if err != nil {
		t.Fatal(err)
	}
	c.Put("dek-1", mustDEK(t))

	if _, err := Open(fs, "cache.bin", []byte("wrong")); !errors.Is(err, ErrBadPasskey) {
		t.Fatalf("wrong passkey: %v", err)
	}
}

func TestTamperDetection(t *testing.T) {
	fs := vfs.NewMem()
	c, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	c.Put("dek-1", mustDEK(t))

	data, err := vfs.ReadFile(fs, "cache.bin")
	if err != nil {
		t.Fatal(err)
	}
	// Flip one ciphertext byte.
	data[len(data)-40] ^= 0x01
	if err := vfs.WriteFile(fs, "cache.bin", data); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(fs, "cache.bin", []byte("pw")); !errors.Is(err, ErrBadPasskey) {
		t.Fatalf("tampered cache accepted: %v", err)
	}
}

func TestNoPlaintextDEKOnDisk(t *testing.T) {
	fs := vfs.NewMem()
	c, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	dek := mustDEK(t)
	c.Put("dek-secret", dek)

	data, err := vfs.ReadFile(fs, "cache.bin")
	if err != nil {
		t.Fatal(err)
	}
	// Neither the raw key bytes, the hex encoding, nor the key id may
	// appear in the sealed file.
	hexKey := dek.Hex()
	if containsSub(data, dek[:]) || containsSub(data, []byte(hexKey)) || containsSub(data, []byte("dek-secret")) {
		t.Fatal("plaintext key material leaked into the cache file")
	}
}

func containsSub(haystack, needle []byte) bool {
	if len(needle) == 0 || len(haystack) < len(needle) {
		return false
	}
	for i := 0; i+len(needle) <= len(haystack); i++ {
		match := true
		for j := range needle {
			if haystack[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func TestSharedBetweenInstances(t *testing.T) {
	// Two cache handles on the same file (co-located instances with the
	// same passkey): writes by one are visible after the other reopens.
	fs := vfs.NewMem()
	a, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	dek := mustDEK(t)
	a.Put("dek-shared", dek)

	b, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Get("dek-shared")
	if err != nil {
		t.Fatal(err)
	}
	if got != dek {
		t.Fatal("shared cache mismatch")
	}
}

func TestAutosaveOff(t *testing.T) {
	fs := vfs.NewMem()
	c, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	c.SetAutosave(false)
	c.Put("dek-1", mustDEK(t))

	// Not yet persisted.
	if _, err := fs.Stat("cache.bin"); !errors.Is(err, vfs.ErrNotFound) {
		t.Fatalf("file exists before Save: %v", err)
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("cache.bin"); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAndConcurrency(t *testing.T) {
	fs := vfs.NewMem()
	c, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	c.SetAutosave(false)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				id := kds.KeyID(fmt.Sprintf("dek-%d-%d", i, j))
				c.Put(id, crypt.DEK{})
				c.Get(id)
				c.Get("dek-missing")
			}
		}(i)
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits != 400 || misses != 400 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestCorruptedTruncatedFile(t *testing.T) {
	fs := vfs.NewMem()
	if err := vfs.WriteFile(fs, "cache.bin", []byte("short")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(fs, "cache.bin", []byte("pw")); !errors.Is(err, ErrBadPasskey) {
		t.Fatalf("truncated cache accepted: %v", err)
	}
}
