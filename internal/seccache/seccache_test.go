package seccache

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"shield/internal/crypt"
	"shield/internal/kds"
	"shield/internal/vfs"
)

func mustDEK(t *testing.T) crypt.DEK {
	t.Helper()
	dek, err := crypt.NewDEK()
	if err != nil {
		t.Fatal(err)
	}
	return dek
}

func TestPutGetDelete(t *testing.T) {
	fs := vfs.NewMem()
	c, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	dek := mustDEK(t)
	if err := c.Put("dek-1", dek); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("dek-1")
	if err != nil {
		t.Fatal(err)
	}
	if got != dek {
		t.Fatal("round trip mismatch")
	}
	if _, err := c.Get("dek-2"); !errors.Is(err, ErrNotCached) {
		t.Fatalf("want ErrNotCached, got %v", err)
	}
	if err := c.Delete("dek-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("dek-1"); !errors.Is(err, ErrNotCached) {
		t.Fatalf("deleted key still present: %v", err)
	}
	// Deleting a missing key is a no-op.
	if err := c.Delete("dek-1"); err != nil {
		t.Fatal(err)
	}
}

func TestPersistsAcrossReopen(t *testing.T) {
	fs := vfs.NewMem()
	c, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	deks := make(map[kds.KeyID]crypt.DEK)
	for i := 0; i < 50; i++ {
		id := kds.KeyID(fmt.Sprintf("dek-%03d", i))
		deks[id] = mustDEK(t)
		if err := c.Put(id, deks[id]); err != nil {
			t.Fatal(err)
		}
	}

	c2, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 50 {
		t.Fatalf("reopened with %d entries", c2.Len())
	}
	for id, want := range deks {
		got, err := c2.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if got != want {
			t.Fatalf("DEK %s corrupted across reopen", id)
		}
	}
}

func TestWrongPasskeyFailsClosed(t *testing.T) {
	fs := vfs.NewMem()
	c, err := Open(fs, "cache.bin", []byte("correct"))
	if err != nil {
		t.Fatal(err)
	}
	c.Put("dek-1", mustDEK(t))

	if _, err := Open(fs, "cache.bin", []byte("wrong")); !errors.Is(err, ErrBadPasskey) {
		t.Fatalf("wrong passkey: %v", err)
	}
}

func TestTamperDetection(t *testing.T) {
	fs := vfs.NewMem()
	c, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	c.Put("dek-1", mustDEK(t))

	data, err := vfs.ReadFile(fs, "cache.bin")
	if err != nil {
		t.Fatal(err)
	}
	// Flip one ciphertext byte.
	data[len(data)-40] ^= 0x01
	if err := vfs.WriteFile(fs, "cache.bin", data); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(fs, "cache.bin", []byte("pw")); !errors.Is(err, ErrBadPasskey) {
		t.Fatalf("tampered cache accepted: %v", err)
	}
}

func TestNoPlaintextDEKOnDisk(t *testing.T) {
	fs := vfs.NewMem()
	c, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	dek := mustDEK(t)
	c.Put("dek-secret", dek)

	data, err := vfs.ReadFile(fs, "cache.bin")
	if err != nil {
		t.Fatal(err)
	}
	// Neither the raw key bytes, the hex encoding, nor the key id may
	// appear in the sealed file.
	hexKey := dek.Hex()
	if containsSub(data, dek[:]) || containsSub(data, []byte(hexKey)) || containsSub(data, []byte("dek-secret")) {
		t.Fatal("plaintext key material leaked into the cache file")
	}
}

func containsSub(haystack, needle []byte) bool {
	if len(needle) == 0 || len(haystack) < len(needle) {
		return false
	}
	for i := 0; i+len(needle) <= len(haystack); i++ {
		match := true
		for j := range needle {
			if haystack[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func TestSharedBetweenInstances(t *testing.T) {
	// Two cache handles on the same file (co-located instances with the
	// same passkey): writes by one are visible after the other reopens.
	fs := vfs.NewMem()
	a, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	dek := mustDEK(t)
	a.Put("dek-shared", dek)

	b, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Get("dek-shared")
	if err != nil {
		t.Fatal(err)
	}
	if got != dek {
		t.Fatal("shared cache mismatch")
	}
}

func TestAutosaveOff(t *testing.T) {
	fs := vfs.NewMem()
	c, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	c.SetAutosave(false)
	c.Put("dek-1", mustDEK(t))

	// Not yet persisted.
	if _, err := fs.Stat("cache.bin"); !errors.Is(err, vfs.ErrNotFound) {
		t.Fatalf("file exists before Save: %v", err)
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("cache.bin"); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAndConcurrency(t *testing.T) {
	fs := vfs.NewMem()
	c, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	c.SetAutosave(false)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				id := kds.KeyID(fmt.Sprintf("dek-%d-%d", i, j))
				c.Put(id, crypt.DEK{})
				c.Get(id)
				c.Get("dek-missing")
			}
		}(i)
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits != 400 || misses != 400 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestCorruptedTruncatedFile(t *testing.T) {
	// Structural damage is provably corruption, not a passkey mismatch. The
	// cache is only an optimization (DEKs re-fetch from the KDS), so a
	// truncated file cold-starts instead of failing the open.
	fs := vfs.NewMem()
	if err := vfs.WriteFile(fs, "cache.bin", []byte("short")); err != nil {
		t.Fatal(err)
	}
	c, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatalf("truncated cache should cold-start: %v", err)
	}
	if !c.Recovered() {
		t.Fatal("Recovered() = false after cold-starting a corrupt cache")
	}
	if c.Len() != 0 {
		t.Fatalf("cold-started cache has %d entries", c.Len())
	}
	// The cold cache is fully functional and persists over the wreck.
	if err := c.Put("dek-1", mustDEK(t)); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	if c2.Recovered() || c2.Len() != 1 {
		t.Fatalf("reopen after cold-start save: recovered=%v len=%d", c2.Recovered(), c2.Len())
	}
}

func TestBadMagicColdStarts(t *testing.T) {
	fs := vfs.NewMem()
	c, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	c.Put("dek-1", mustDEK(t))
	data, err := vfs.ReadFile(fs, "cache.bin")
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xFF
	if err := vfs.WriteFile(fs, "cache.bin", data); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatalf("bad-magic cache should cold-start: %v", err)
	}
	if !c2.Recovered() || c2.Len() != 0 {
		t.Fatalf("recovered=%v len=%d", c2.Recovered(), c2.Len())
	}
}

func TestLeftoverTmpRemovedOnOpen(t *testing.T) {
	// A crash between WriteFile(cache.tmp) and Rename leaves a stale .tmp
	// next to an intact live cache; Open must discard it and load the live
	// file untouched.
	fs := vfs.NewMem()
	c, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	dek := mustDEK(t)
	c.Put("dek-1", dek)
	if err := vfs.WriteFile(fs, "cache.bin.tmp", []byte("partial save wreckage")); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := c2.Get("dek-1"); err != nil || got != dek {
		t.Fatalf("live cache damaged by tmp cleanup: %v", err)
	}
	if _, err := fs.Stat("cache.bin.tmp"); !errors.Is(err, vfs.ErrNotFound) {
		t.Fatalf("stale tmp survived open: %v", err)
	}
}

func TestCrashDuringSave(t *testing.T) {
	// Power-loss simulation around Save: at every sync boundary the durable
	// image must either hold the previous sealed cache or the new one —
	// never an unreadable hybrid — and reopening must always succeed.
	cfs := vfs.NewCrash(7)
	var images []*vfs.CrashImage
	cfs.AfterSync(func(event string, img *vfs.CrashImage) {
		images = append(images, img)
	})

	c, err := Open(cfs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	deks := make(map[kds.KeyID]crypt.DEK)
	for i := 0; i < 5; i++ {
		id := kds.KeyID(fmt.Sprintf("dek-%d", i))
		deks[id] = mustDEK(t)
		if err := c.Put(id, deks[id]); err != nil {
			t.Fatal(err)
		}
	}
	if len(images) == 0 {
		t.Fatal("no sync boundaries during saves")
	}
	for i, img := range images {
		for _, mode := range []string{"strict", "torn"} {
			var fs *vfs.MemFS
			if mode == "strict" {
				fs = img.Strict()
			} else {
				fs = img.Torn(0)
			}
			c2, err := Open(fs, "cache.bin", []byte("pw"))
			if err != nil {
				t.Fatalf("%s point %d: reopen: %v", mode, i, err)
			}
			// Every entry present is one we actually stored.
			for id, want := range deks {
				got, err := c2.Get(id)
				if errors.Is(err, ErrNotCached) {
					continue
				}
				if err != nil {
					t.Fatalf("%s point %d: Get(%s): %v", mode, i, id, err)
				}
				if got != want {
					t.Fatalf("%s point %d: DEK %s mangled", mode, i, id)
				}
			}
		}
	}
}

// TestEpochRatchet: the sealed freshness-epoch floor only moves up. Sealing
// a lower value is a silent no-op, floors are per store, and the values
// ride the same sealed (authenticated) payload as the DEKs, so they
// survive a reopen and fail closed with the rest of the cache.
func TestEpochRatchet(t *testing.T) {
	fs := vfs.NewMem()
	c, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.EpochFloor("db"); ok {
		t.Fatal("fresh cache claims a sealed floor")
	}
	if err := c.SealEpoch("db", 5); err != nil {
		t.Fatal(err)
	}
	if err := c.SealEpoch("db", 3); err != nil { // ratchet: ignored
		t.Fatal(err)
	}
	if got, ok := c.EpochFloor("db"); !ok || got != 5 {
		t.Fatalf("floor = %d, %v after sealing 5 then 3; want 5, true", got, ok)
	}
	if err := c.SealEpoch("db", 9); err != nil {
		t.Fatal(err)
	}
	if err := c.SealEpoch("other", 2); err != nil { // independent store
		t.Fatal(err)
	}

	// The floors persist across a reopen with the right passkey...
	c2, err := Open(fs, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := c2.EpochFloor("db"); !ok || got != 9 {
		t.Fatalf("reopened floor(db) = %d, %v; want 9, true", got, ok)
	}
	if got, ok := c2.EpochFloor("other"); !ok || got != 2 {
		t.Fatalf("reopened floor(other) = %d, %v; want 2, true", got, ok)
	}
	if err := c2.SealEpoch("db", 7); err != nil { // still ratcheted
		t.Fatal(err)
	}
	if got, _ := c2.EpochFloor("db"); got != 9 {
		t.Fatalf("floor moved backwards to %d after reopen", got)
	}

	// ...and are unreadable without it: a wrong passkey fails the open, so
	// an attacker cannot quietly lower the floor by rewriting the file.
	if _, err := Open(fs, "cache.bin", []byte("wrong")); err == nil {
		t.Fatal("wrong passkey opened the cache holding the epoch floors")
	}
}
