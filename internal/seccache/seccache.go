// Package seccache implements SHIELD's secure local DEK cache
// (Section 5.2): an on-disk store of previously used DEKs, sealed with a
// key derived from a server passkey that is never persisted.
//
// The cache removes the need to re-request every DEK from the KDS on
// database restart, and can be shared by multiple LSM-KVS instances on the
// same server (as in ZippyDB-style deployments) provided they hold the
// passkey. During DEK rotation the new DEK is inserted and the DEK of the
// compacted-away file is deleted, so only keys for live files remain
// recoverable.
//
// On-disk layout:
//
//	magic(4) version(4) salt(16) iv(16) len(4) ciphertext hmac(32)
//
// The payload (a JSON map of KeyID -> hex DEK) is AES-128-CTR encrypted
// under a PBKDF2-derived key; an HMAC-SHA256 tag over header+ciphertext
// provides tamper evidence.
package seccache

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"path"
	"strconv"
	"strings"
	"sync"

	"shield/internal/crypt"
	"shield/internal/kds"
	"shield/internal/metrics"
	"shield/internal/vfs"
)

const (
	magic      = 0x53434348 // "SCCH"
	version    = 1
	saltSize   = 16
	hmacSize   = 32
	pbkdf2Iter = 4096
)

// Errors returned by the cache.
var (
	ErrBadPasskey = errors.New("seccache: passkey mismatch or corrupted cache")
	ErrNotCached  = errors.New("seccache: DEK not in cache")
)

// errStructural marks damage that is provably file corruption (truncation,
// bad magic, inconsistent lengths) rather than a possible passkey mismatch.
// The cache is only an optimization — every DEK is recoverable from the KDS —
// so structural damage cold-starts the cache instead of failing the open.
// An HMAC mismatch stays ErrBadPasskey: it is indistinguishable from a wrong
// passkey, and failing closed is the right call for a security cache.
var errStructural = errors.New("seccache: structurally corrupt cache file")

// Cache is a secure, persistent DEK cache. It is safe for concurrent use.
//
// Locking: mu guards the entry map and counters and is never held across
// I/O — Get/Put/Has on other goroutines must not stall behind a disk (or,
// disaggregated, a network) write. Persistence encodes a sealed snapshot
// under mu, then writes it under saveMu; snapSeq orders snapshots by the
// state they observed so a slow older write can never clobber a newer one.
type Cache struct {
	fs      vfs.FS
	path    string
	aesKey  crypt.DEK
	hmacKey []byte
	salt    [saltSize]byte
	mu      sync.Mutex
	entries map[kds.KeyID]crypt.DEK
	// epochs holds per-store freshness-epoch floors (rollback detection),
	// sealed into the same tamper-evident payload as the DEKs: an attacker
	// who can roll the data directory back cannot roll the floor back
	// without the passkey.
	epochs    map[string]uint64
	snapSeq   uint64
	hits      int64
	misses    int64
	saveErrs  int64
	autosave  bool
	recovered bool

	saveMu   sync.Mutex // serializes snapshot writes; never nested with mu
	savedSeq uint64     // guarded by saveMu: newest snapshot on disk
}

// Open loads (or creates) the cache at path, unsealing it with passkey.
// Opening an existing cache with the wrong passkey fails with ErrBadPasskey.
func Open(fs vfs.FS, path string, passkey []byte) (*Cache, error) {
	c := &Cache{
		fs:       fs,
		path:     path,
		entries:  make(map[kds.KeyID]crypt.DEK),
		epochs:   make(map[string]uint64),
		autosave: true,
	}
	// A leftover .tmp means a save crashed between WriteFile and Rename; the
	// live cache (if any) is intact, the partial file is garbage.
	if err := fs.Remove(path + ".tmp"); err != nil && !errors.Is(err, vfs.ErrNotFound) {
		return nil, err
	}
	data, err := vfs.ReadFile(fs, path)
	switch {
	case errors.Is(err, vfs.ErrNotFound):
		if err := c.coldStart(passkey); err != nil {
			return nil, err
		}
		return c, nil
	case err != nil:
		return nil, err
	}
	if err := c.load(data, passkey); err != nil {
		if errors.Is(err, errStructural) {
			// Treat a structurally corrupt cache as cold: every DEK it held
			// is re-fetchable from the KDS.
			if err := c.coldStart(passkey); err != nil {
				return nil, err
			}
			c.recovered = true
			return c, nil
		}
		return nil, err
	}
	return c, nil
}

// coldStart resets to an empty cache with a fresh salt, so derived keys are
// stable from here on.
func (c *Cache) coldStart(passkey []byte) error {
	c.entries = make(map[kds.KeyID]crypt.DEK)
	c.epochs = make(map[string]uint64)
	iv, err := crypt.NewIV()
	if err != nil {
		return err
	}
	copy(c.salt[:], iv[:])
	c.deriveKeys(passkey)
	return nil
}

// Recovered reports whether Open found a structurally corrupt cache file and
// cold-started instead of loading it (DEKs will re-populate from the KDS).
func (c *Cache) Recovered() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recovered
}

func (c *Cache) deriveKeys(passkey []byte) {
	dk := crypt.PBKDF2SHA256(passkey, c.salt[:], pbkdf2Iter, crypt.KeySize+hmacSize)
	defer crypt.Zeroize(dk)
	copy(c.aesKey[:], dk[:crypt.KeySize])
	// Copy rather than alias: retaining a sub-slice would keep the whole
	// derived buffer (AES half included) alive and un-wipeable.
	c.hmacKey = append(c.hmacKey[:0], dk[crypt.KeySize:]...)
}

func (c *Cache) load(data []byte, passkey []byte) error {
	const hdrLen = 4 + 4 + saltSize + crypt.IVSize + 4
	if len(data) < hdrLen+hmacSize {
		return fmt.Errorf("%w: truncated", errStructural)
	}
	if binary.LittleEndian.Uint32(data[0:4]) != magic {
		return fmt.Errorf("%w: bad magic", errStructural)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != version {
		return fmt.Errorf("seccache: unsupported version %d", v)
	}
	copy(c.salt[:], data[8:8+saltSize])
	c.deriveKeys(passkey)

	var iv [crypt.IVSize]byte
	copy(iv[:], data[8+saltSize:8+saltSize+crypt.IVSize])
	n := binary.LittleEndian.Uint32(data[8+saltSize+crypt.IVSize : hdrLen])
	if int(n) != len(data)-hdrLen-hmacSize {
		return fmt.Errorf("%w: length mismatch", errStructural)
	}
	body := data[hdrLen : hdrLen+int(n)]
	tag := data[hdrLen+int(n):]
	if !crypt.VerifyHMACSHA256(c.hmacKey, data[:hdrLen+int(n)], tag) {
		return ErrBadPasskey
	}
	plain := make([]byte, len(body))
	if err := crypt.EncryptAt(c.aesKey, iv, plain, body, 0); err != nil {
		return err
	}
	// The decrypted payload holds every DEK in hex; wipe it once decoded.
	defer crypt.Zeroize(plain)
	var raw map[string]string
	if err := json.Unmarshal(plain, &raw); err != nil {
		return fmt.Errorf("%w: payload decode: %v", ErrBadPasskey, err)
	}
	for id, val := range raw {
		// Freshness-epoch floors share the sealed payload with the DEKs
		// under a reserved prefix no KDS key ID uses.
		if store, ok := strings.CutPrefix(id, epochPrefix); ok {
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return fmt.Errorf("seccache: bad epoch encoding for %s: %w", store, err)
			}
			c.epochs[store] = n
			continue
		}
		kb, err := hex.DecodeString(val)
		if err != nil {
			return fmt.Errorf("seccache: bad key encoding for %s: %w", id, err)
		}
		dek, err := crypt.DEKFromBytes(kb)
		crypt.Zeroize(kb)
		if err != nil {
			return err
		}
		c.entries[kds.KeyID(id)] = dek
	}
	return nil
}

// epochPrefix namespaces freshness-epoch entries inside the sealed payload.
// KDS key IDs never start with "!", so the two spaces cannot collide.
const epochPrefix = "!epoch:"

// EpochFloor returns the sealed freshness-epoch floor for the named store,
// and whether one has ever been sealed.
func (c *Cache) EpochFloor(store string) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.epochs[store]
	return e, ok
}

// SealEpoch ratchets the named store's epoch floor up to epoch and persists
// the cache. Lower values are ignored — the floor never moves backwards,
// which is the whole point.
func (c *Cache) SealEpoch(store string, epoch uint64) error {
	c.mu.Lock()
	if cur, ok := c.epochs[store]; ok && cur >= epoch {
		c.mu.Unlock()
		return nil
	}
	c.epochs[store] = epoch
	c.mu.Unlock()
	return c.save()
}

// SetAutosave controls whether mutations persist immediately (default true).
// Benchmarks that mutate at high rate can disable it and call Save once.
func (c *Cache) SetAutosave(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.autosave = on
}

// Get returns the cached DEK for id, or ErrNotCached.
func (c *Cache) Get(id kds.KeyID) (crypt.DEK, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dek, ok := c.entries[id]
	if !ok {
		c.misses++
		return crypt.DEK{}, fmt.Errorf("%w: %s", ErrNotCached, id)
	}
	c.hits++
	return dek, nil
}

// Put stores a DEK and persists the cache (unless autosave is off).
func (c *Cache) Put(id kds.KeyID, dek crypt.DEK) error {
	c.mu.Lock()
	c.entries[id] = dek
	autosave := c.autosave
	c.mu.Unlock()
	if autosave {
		return c.save()
	}
	return nil
}

// Has reports whether id is cached, without touching the hit/miss counters
// (used to decide whether degraded KDS-less operation is possible).
func (c *Cache) Has(id kds.KeyID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[id]
	return ok
}

// Delete removes a DEK — called when its file is deleted after compaction,
// ensuring only current keys remain accessible.
func (c *Cache) Delete(id kds.KeyID) error {
	c.mu.Lock()
	if _, ok := c.entries[id]; !ok {
		c.mu.Unlock()
		return nil
	}
	delete(c.entries, id)
	autosave := c.autosave
	c.mu.Unlock()
	if autosave {
		return c.save()
	}
	return nil
}

// Len reports the number of cached DEKs.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats reports hit/miss counters.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// SaveErrors reports how many persistence attempts have failed — the cache
// keeps serving from memory across save failures (storage may itself be
// degraded), and this counter is how operators notice.
func (c *Cache) SaveErrors() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saveErrs
}

// Save persists the cache immediately.
func (c *Cache) Save() error {
	return c.save()
}

// save encodes a sealed snapshot of the current state under mu (CPU only),
// releases it, and hands the bytes to writeSnapshot. Concurrent mutators
// therefore never queue behind storage latency — the failure mode the PR 3
// degraded-mode work measured when the cache directory is slow or remote.
func (c *Cache) save() error {
	c.mu.Lock()
	c.snapSeq++
	seq := c.snapSeq
	out, err := c.encodeLocked()
	c.mu.Unlock()
	if err == nil {
		err = c.writeSnapshot(seq, out)
	}
	if err != nil {
		c.mu.Lock()
		c.saveErrs++
		c.mu.Unlock()
		if errors.Is(err, vfs.ErrNoSpace) {
			// A full cache disk must not fail the write path: the cache is an
			// optimization (every DEK is re-fetchable from the KDS) and the
			// entry is already live in memory. Count the drop and keep
			// serving; a later save retries once mutations continue.
			metrics.Storage.CacheSavesDropped.Add(1)
			return nil
		}
	}
	return err
}

// encodeLocked serializes and seals the entry map. Caller holds mu.
func (c *Cache) encodeLocked() ([]byte, error) {
	raw := make(map[string]string, len(c.entries)+len(c.epochs))
	for id, dek := range c.entries {
		raw[string(id)] = hex.EncodeToString(dek[:])
	}
	for store, e := range c.epochs {
		raw[epochPrefix+store] = strconv.FormatUint(e, 10)
	}
	plain, err := json.Marshal(raw)
	if err != nil {
		return nil, fmt.Errorf("seccache: encode: %w", err)
	}
	// The marshaled payload holds every DEK in hex; wipe it once encrypted.
	defer crypt.Zeroize(plain)
	iv, err := crypt.NewIV()
	if err != nil {
		return nil, err
	}
	body := make([]byte, len(plain))
	if err := crypt.EncryptAt(c.aesKey, iv, body, plain, 0); err != nil {
		return nil, err
	}

	const hdrLen = 4 + 4 + saltSize + crypt.IVSize + 4
	out := make([]byte, hdrLen, hdrLen+len(body)+hmacSize)
	binary.LittleEndian.PutUint32(out[0:4], magic)
	binary.LittleEndian.PutUint32(out[4:8], version)
	copy(out[8:8+saltSize], c.salt[:])
	copy(out[8+saltSize:8+saltSize+crypt.IVSize], iv[:])
	binary.LittleEndian.PutUint32(out[8+saltSize+crypt.IVSize:hdrLen], uint32(len(body)))
	out = append(out, body...)
	out = append(out, crypt.HMACSHA256(c.hmacKey, out)...)
	return out, nil
}

// writeSnapshot persists one encoded snapshot: write-then-rename so a crash
// mid-save never corrupts the live cache, then sync the directory so the
// rename itself survives power loss. A snapshot whose seq is not newer than
// the last one written is dropped — seq is assigned under mu at encode
// time, so it orders snapshots by the state they observed, and a slow older
// writer cannot overwrite a newer cache file.
//
//shield:nolockio saveMu only orders snapshot writes; no read or mutate path takes it
func (c *Cache) writeSnapshot(seq uint64, out []byte) error {
	c.saveMu.Lock()
	defer c.saveMu.Unlock()
	if seq <= c.savedSeq {
		return nil
	}
	tmp := c.path + ".tmp"
	if err := vfs.WriteFile(c.fs, tmp, out); err != nil {
		return err
	}
	if err := c.fs.Rename(tmp, c.path); err != nil {
		return err
	}
	if err := c.fs.SyncDir(path.Dir(c.path)); err != nil {
		return err
	}
	c.savedSeq = seq
	return nil
}
