package dstore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"shield/internal/crypt"
	"shield/internal/metrics"
	"shield/internal/vfs"
)

// testCluster is N storage nodes over individual MemFS bases, restartable
// on their original addresses.
type testCluster struct {
	t     *testing.T
	bases []*vfs.MemFS
	srvs  []*Server
	addrs []string
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{t: t}
	for i := 0; i < n; i++ {
		base := vfs.NewMem()
		srv, err := NewServer(base, "127.0.0.1:0", 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		tc.bases = append(tc.bases, base)
		tc.srvs = append(tc.srvs, srv)
		tc.addrs = append(tc.addrs, srv.Addr())
	}
	t.Cleanup(tc.closeAll)
	return tc
}

func (tc *testCluster) closeAll() {
	for _, s := range tc.srvs {
		if s != nil {
			s.Close()
		}
	}
}

func (tc *testCluster) kill(i int) {
	tc.t.Helper()
	if err := tc.srvs[i].Close(); err != nil {
		tc.t.Fatal(err)
	}
	tc.srvs[i] = nil
}

// restart brings node i back on its original address with its MemFS intact
// (the node lost its process, not its disk).
func (tc *testCluster) restart(i int) {
	tc.t.Helper()
	srv, err := NewServer(tc.bases[i], tc.addrs[i], 0, 0)
	if err != nil {
		tc.t.Fatal(err)
	}
	tc.srvs[i] = srv
}

func (tc *testCluster) dial(quorum int) *ReplicaSet {
	tc.t.Helper()
	rs, err := DialReplicaSet(ReplicaConfig{
		WriteQuorum: quorum,
		Client:      fastDStoreConfig(1),
		Dirs:        []string{"db"},
		ResyncEvery: 20 * time.Millisecond,
	}, tc.addrs...)
	if err != nil {
		tc.t.Fatal(err)
	}
	tc.t.Cleanup(func() { rs.Close() })
	return rs
}

func readBase(t *testing.T, base *vfs.MemFS, name string) []byte {
	t.Helper()
	data, err := vfs.ReadFile(base, name)
	if err != nil {
		t.Fatalf("reading %s: %v", name, err)
	}
	return data
}

// requireConverged asserts the given bases hold byte-identical copies of
// every file under db.
func requireConverged(t *testing.T, bases ...*vfs.MemFS) {
	t.Helper()
	ref, err := bases[0].List("db")
	if err != nil {
		t.Fatal(err)
	}
	for i, base := range bases[1:] {
		infos, err := base.List("db")
		if err != nil {
			t.Fatalf("replica %d: %v", i+1, err)
		}
		if len(infos) != len(ref) {
			t.Fatalf("replica %d has %d files, replica 0 has %d", i+1, len(infos), len(ref))
		}
		for _, fi := range ref {
			want := readBase(t, bases[0], "db/"+fi.Name)
			got := readBase(t, base, "db/"+fi.Name)
			if !bytes.Equal(want, got) {
				t.Fatalf("replica %d diverges on db/%s: %d vs %d bytes", i+1, fi.Name, len(got), len(want))
			}
		}
	}
}

func TestReplicaSetFanOutRoundTrip(t *testing.T) {
	tc := newTestCluster(t, 3)
	rs := tc.dial(2)

	if err := rs.MkdirAll("db"); err != nil {
		t.Fatal(err)
	}
	payload := []byte("replicated once, present thrice")
	f, err := rs.Create("db/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rs.SyncDir("db"); err != nil {
		t.Fatal(err)
	}
	requireConverged(t, tc.bases...)

	r, err := rs.Open("db/a")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	r.Close()
	if !bytes.Equal(buf, payload) {
		t.Fatalf("read %q, want %q", buf, payload)
	}

	if err := rs.Rename("db/a", "db/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Stat("db/b"); err != nil {
		t.Fatal(err)
	}
	if err := rs.Remove("db/b"); err != nil {
		t.Fatal(err)
	}
	if err := rs.Remove("db/b"); !errors.Is(err, vfs.ErrNotFound) {
		t.Fatalf("double remove = %v, want ErrNotFound (consistent refusal)", err)
	}
	requireConverged(t, tc.bases...)

	for _, st := range rs.Replicas() {
		if !st.InSync {
			t.Fatalf("replica %s not in sync after clean workload", st.Addr)
		}
	}
}

// TestReplicaKillMidWorkload kills one of three replicas mid-stream: every
// acknowledged write must survive, reads must fail over (observable in the
// failover counter), and the dead replica must be demoted out of the
// read/quorum set.
func TestReplicaKillMidWorkload(t *testing.T) {
	metrics.Net.Reset()
	tc := newTestCluster(t, 3)
	rs := tc.dial(2)
	if err := rs.MkdirAll("db"); err != nil {
		t.Fatal(err)
	}

	write := func(name string, data []byte) {
		t.Helper()
		f, err := rs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	var want [][]byte
	for i := 0; i < 4; i++ {
		data := bytes.Repeat([]byte{byte('a' + i)}, 100+i)
		write(fmt.Sprintf("db/f%d", i), data)
		want = append(want, data)
	}

	// Force the sticky read preference onto replica 0, then kill it.
	if _, err := rs.Stat("db/f0"); err != nil {
		t.Fatal(err)
	}
	tc.kill(0)

	// Writes keep succeeding on the surviving quorum.
	for i := 4; i < 8; i++ {
		data := bytes.Repeat([]byte{byte('a' + i)}, 100+i)
		write(fmt.Sprintf("db/f%d", i), data)
		want = append(want, data)
	}
	// Every acknowledged write is readable (read-any fails over off the
	// dead preferred replica).
	for i, data := range want {
		r, err := rs.Open(fmt.Sprintf("db/f%d", i))
		if err != nil {
			t.Fatalf("open db/f%d after kill: %v", i, err)
		}
		buf := make([]byte, len(data))
		if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
			t.Fatalf("read db/f%d after kill: %v", i, err)
		}
		r.Close()
		if !bytes.Equal(buf, data) {
			t.Fatalf("db/f%d lost or corrupted after replica kill", i)
		}
	}

	snap := metrics.Net.Snapshot()
	if snap.Failovers == 0 {
		t.Fatal("no failover recorded despite killing the preferred replica")
	}
	var demoted bool
	for _, st := range rs.Replicas() {
		if st.Addr == tc.addrs[0] && !st.InSync {
			demoted = true
		}
	}
	if !demoted {
		t.Fatal("killed replica still marked in-sync after failed writes")
	}
	// The two survivors hold identical, complete copies.
	requireConverged(t, tc.bases[1], tc.bases[2])
	metrics.Net.Reset()
}

// TestReplicaRejoinResync kills a replica, keeps writing (including to a
// long-lived open handle, WAL-style), restarts the node with its old disk,
// and requires the background re-sync to converge all three copies —
// including adopting the open handle so post-rejoin appends reach the
// rejoined node too.
func TestReplicaRejoinResync(t *testing.T) {
	metrics.Net.Reset()
	tc := newTestCluster(t, 3)
	rs := tc.dial(2)
	if err := rs.MkdirAll("db"); err != nil {
		t.Fatal(err)
	}

	wal, err := rs.Create("db/wal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Write([]byte("epoch-1|")); err != nil {
		t.Fatal(err)
	}
	if err := wal.Sync(); err != nil {
		t.Fatal(err)
	}

	tc.kill(2)

	// Mutations while node 2 is down: a new SST and more WAL appends.
	if err := vfs.WriteFile(rs, "db/sst1", bytes.Repeat([]byte{7}, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Write([]byte("epoch-2|")); err != nil {
		t.Fatal(err)
	}
	if err := wal.Sync(); err != nil {
		t.Fatal(err)
	}

	tc.restart(2)

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := rs.Replicas()
		if st[2].InSync {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica 2 never rejoined: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Appends after the rejoin must reach the adopted branch on node 2.
	if _, err := wal.Write([]byte("epoch-3|")); err != nil {
		t.Fatal(err)
	}
	if err := wal.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	requireConverged(t, tc.bases...)
	if got := string(readBase(t, tc.bases[2], "db/wal")); got != "epoch-1|epoch-2|epoch-3|" {
		t.Fatalf("rejoined replica WAL = %q", got)
	}
	snap := metrics.Net.Snapshot()
	if snap.Resyncs == 0 || snap.ResyncBytes == 0 {
		t.Fatalf("re-sync not recorded: resyncs=%d resync_bytes=%d", snap.Resyncs, snap.ResyncBytes)
	}
	if ep, ok := snap.Endpoints[tc.addrs[2]]; !ok || ep.ResyncBytes == 0 {
		t.Fatalf("per-endpoint resync bytes missing for %s: %+v", tc.addrs[2], snap.Endpoints)
	}
	metrics.Net.Reset()
}

// TestReplicaSetSeqDedupAcrossRedial puts one replica behind a proxy that
// swallows a response after the write was applied node-side: the branch
// client must redial and retry, and the server-side sequence dedup must
// keep that replica byte-identical to the others (no double-applied
// packet).
func TestReplicaSetSeqDedupAcrossRedial(t *testing.T) {
	tc := newTestCluster(t, 2)
	// Response #3 through the proxy: OpCreate, first OpWrite, so the
	// second OpWrite's response is lost after being applied.
	proxy := newDropResponseNProxy(t, tc.addrs[0], 3)
	rs, err := DialReplicaSet(ReplicaConfig{
		WriteQuorum: 2,
		Client:      fastDStoreConfig(1),
		Dirs:        []string{"db"},
		ResyncEvery: 20 * time.Millisecond,
	}, proxy.addr(), tc.addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	if err := rs.MkdirAll("db"); err != nil {
		t.Fatal(err)
	}
	f, err := rs.Create("db/wal")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Write(bytes.Repeat([]byte{byte('x' + i)}, 32)); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatalf("sync %d across dropped response: %v", i, err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	a := readBase(t, tc.bases[0], "db/wal")
	b := readBase(t, tc.bases[1], "db/wal")
	if !bytes.Equal(a, b) {
		t.Fatalf("replicas diverged across redial: %d vs %d bytes", len(a), len(b))
	}
	if len(a) != 96 {
		t.Fatalf("replica holds %d bytes, want 96 (packet applied exactly once)", len(a))
	}
}

// TestQuorumLossFailsWritesServesReads kills every replica but one with
// quorum 2: mutations must refuse with ErrNoQuorum while reads keep being
// served by the survivor.
func TestQuorumLossFailsWritesServesReads(t *testing.T) {
	tc := newTestCluster(t, 3)
	rs := tc.dial(2)
	if err := rs.MkdirAll("db"); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(rs, "db/keep", []byte("still served")); err != nil {
		t.Fatal(err)
	}

	tc.kill(0)
	tc.kill(1)

	// Drive writes until both dead replicas are demoted; each write is
	// allowed to fail while the set is still discovering the outage.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := vfs.WriteFile(rs, "db/probe", []byte("probe"))
		inSync := 0
		for _, st := range rs.Replicas() {
			if st.InSync {
				inSync++
			}
		}
		if inSync == 1 {
			if err == nil {
				t.Fatal("write acknowledged without quorum")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead replicas never demoted (last write err: %v)", err)
		}
	}
	if err := vfs.WriteFile(rs, "db/after", []byte("x")); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("write below quorum = %v, want ErrNoQuorum", err)
	}

	data, err := vfs.ReadFile(rs, "db/keep")
	if err != nil {
		t.Fatalf("read below write quorum should still be served: %v", err)
	}
	if string(data) != "still served" {
		t.Fatalf("read returned %q", data)
	}
}

// TestDialReconcileMajority starts three nodes whose disks disagree — two
// hold the acknowledged state, one lags with a shorter file and an extra
// orphan — and requires DialReplicaSet to repair the minority to the
// majority version before returning.
func TestDialReconcileMajority(t *testing.T) {
	tc := newTestCluster(t, 3)
	good := []byte("full acknowledged contents")
	for _, base := range tc.bases[:2] {
		if err := base.MkdirAll("db"); err != nil {
			t.Fatal(err)
		}
		if err := vfs.WriteFile(base, "db/f", good); err != nil {
			t.Fatal(err)
		}
	}
	if err := tc.bases[2].MkdirAll("db"); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(tc.bases[2], "db/f", good[:5]); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(tc.bases[2], "db/orphan", []byte("unacked")); err != nil {
		t.Fatal(err)
	}

	rs := tc.dial(2)
	requireConverged(t, tc.bases...)
	if got := readBase(t, tc.bases[2], "db/f"); !bytes.Equal(got, good) {
		t.Fatalf("lagging replica not repaired: %q", got)
	}
	if _, err := tc.bases[2].Stat("db/orphan"); !errors.Is(err, vfs.ErrNotFound) {
		t.Fatalf("unacked orphan survived reconcile: %v", err)
	}
	for _, st := range rs.Replicas() {
		if !st.InSync {
			t.Fatalf("replica %s not in sync after reconcile", st.Addr)
		}
	}
}

// TestDigestAllCatchesDivergence seals a file through the set, then tampers
// with one replica's copy behind the set's back: the all-replica audit must
// refuse with a divergence error even though single-replica reads of the
// untampered copies still pass.
func TestDigestAllCatchesDivergence(t *testing.T) {
	tc := newTestCluster(t, 3)
	rs := tc.dial(2)
	if err := rs.MkdirAll("db"); err != nil {
		t.Fatal(err)
	}

	dek, err := crypt.NewDEK()
	if err != nil {
		t.Fatal(err)
	}
	sealer, err := crypt.NewSealer(dek, []byte("prefix00"), []byte("hdr"))
	if err != nil {
		t.Fatal(err)
	}
	header := bytes.Repeat([]byte{0x5A}, 100)
	payload := make([]byte, 2*crypt.SealedBlockSize+77)
	rand.New(rand.NewSource(42)).Read(payload)

	f, err := rs.Create("db/sst")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(header); err != nil {
		t.Fatal(err)
	}
	w := crypt.NewSealedWriter(f, sealer)
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	want, ok := w.FileDigest()
	if !ok {
		t.Fatal("writer has no digest")
	}

	got, err := rs.DigestAll("db/sst", int64(len(header)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("agreed digest %x != writer digest %x", got, want)
	}

	// Tamper with replica 1's copy directly on its disk (the set never
	// sees the mutation), flipping a tag byte so the chain changes.
	raw := readBase(t, tc.bases[1], "db/sst")
	raw[len(header)+crypt.SealedBlockSize] ^= 0xFF
	if err := vfs.WriteFile(tc.bases[1], "db/sst", raw); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.DigestAll("db/sst", int64(len(header))); err == nil {
		t.Fatal("divergence audit passed with a tampered replica")
	}
}
