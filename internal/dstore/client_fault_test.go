package dstore

import (
	"encoding/gob"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"shield/internal/vfs"
)

func fastDStoreConfig(conns int) Config {
	return Config{
		Conns:          conns,
		DialTimeout:    200 * time.Millisecond,
		RequestTimeout: 500 * time.Millisecond,
		MaxAttempts:    4,
		BackoffBase:    time.Millisecond,
		BackoffMax:     10 * time.Millisecond,
	}
}

// dropResponseNProxy forwards TCP traffic but swallows the n-th
// upstream->client payload and closes the connection, losing exactly one
// response after its request was applied server-side.
type dropResponseNProxy struct {
	ln       net.Listener
	upstream string
	dropN    int

	mu   sync.Mutex
	seen int
}

func newDropResponseNProxy(t *testing.T, upstream string, dropN int) *dropResponseNProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &dropResponseNProxy{ln: ln, upstream: upstream, dropN: dropN}
	go p.serve()
	t.Cleanup(func() { ln.Close() })
	return p
}

func (p *dropResponseNProxy) addr() string { return p.ln.Addr().String() }

func (p *dropResponseNProxy) serve() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.handle(conn)
	}
}

func (p *dropResponseNProxy) handle(conn net.Conn) {
	up, err := net.Dial("tcp", p.upstream)
	if err != nil {
		conn.Close()
		return
	}
	go func() {
		io.Copy(up, conn) //nolint:errcheck
		up.Close()
	}()
	buf := make([]byte, 64<<10)
	for {
		n, err := up.Read(buf)
		if err != nil {
			conn.Close()
			up.Close()
			return
		}
		p.mu.Lock()
		p.seen++
		drop := p.seen == p.dropN
		p.mu.Unlock()
		if drop {
			conn.Close()
			up.Close()
			return
		}
		if _, err := conn.Write(buf[:n]); err != nil {
			conn.Close()
			up.Close()
			return
		}
	}
}

// TestConnDropRetriedTransparently loses a response mid-workload; the
// client must discard the desynced connection, redial, retry, and finish
// the file intact.
func TestConnDropRetriedTransparently(t *testing.T) {
	base := vfs.NewMem()
	srv, err := NewServer(base, "127.0.0.1:0", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Response #2 is the first OpWrite's (after OpCreate's): it is lost
	// after the server applied the write.
	proxy := newDropResponseNProxy(t, srv.Addr(), 2)

	c, err := DialConfig(proxy.addr(), fastDStoreConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := []byte("exactly-once payload")
	f, err := c.Create("file")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync across dropped response: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// The retried write must not have been applied twice.
	got, err := vfs.ReadFile(base, "file")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("server file = %q (%d bytes), want %q once", got, len(got), payload)
	}

	// And the client must still be usable on its redialed connection.
	r, err := c.Open("file")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, len(payload))
	if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != string(payload) {
		t.Fatalf("read back %q, want %q", buf, payload)
	}
}

// TestCloseUnblocksPendingCheckout: with a 1-conn pool held by a slow
// request, a second request blocks on checkout. Close must unblock it with
// ErrClosed instead of leaving it hung forever.
func TestCloseUnblocksPendingCheckout(t *testing.T) {
	base := vfs.NewMem()
	srv, err := NewServer(base, "127.0.0.1:0", 300*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := fastDStoreConfig(1)
	cfg.RequestTimeout = 5 * time.Second // the slow op must not time out
	c, err := DialConfig(srv.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	slowDone := make(chan struct{})
	go func() { // occupies the only pool slot for ~300ms
		close(started)
		c.MkdirAll("slow") //nolint:errcheck
		close(slowDone)
	}()
	<-started
	time.Sleep(20 * time.Millisecond)

	blockedErr := make(chan error, 1)
	go func() { // blocks on checkout behind the slow op
		_, err := c.List("")
		blockedErr <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Close()

	select {
	case err := <-blockedErr:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked request err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked request still hung 2s after Close")
	}
	<-slowDone
}

// fakeShortReadServer speaks just enough of the protocol to return a short
// ReadAt response without the EOF flag — the mid-file anomaly case.
func fakeShortReadServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				dec := gob.NewDecoder(conn)
				enc := gob.NewEncoder(conn)
				for {
					var req Request
					if err := dec.Decode(&req); err != nil {
						return
					}
					resp := &Response{}
					switch req.Op {
					case OpOpen:
						resp.Handle = 1
						resp.Size = 100
					case OpReadAt:
						// Short payload, mid-file: EOF deliberately false.
						resp.Data = []byte("short")
						resp.N = 5
					}
					if err := enc.Encode(resp); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestReadAtMidFileShortResponse: a short response without the server's
// EOF flag must surface io.ErrUnexpectedEOF, not a silent io.EOF that
// would make readers treat a truncated transfer as end-of-file.
func TestReadAtMidFileShortResponse(t *testing.T) {
	addr := fakeShortReadServer(t)
	c, err := DialConfig(addr, fastDStoreConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	r, err := c.Open("whatever")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	n, err := r.ReadAt(buf, 0)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("ReadAt err = %v, want io.ErrUnexpectedEOF", err)
	}
	if n != 5 {
		t.Fatalf("ReadAt n = %d, want 5", n)
	}
}

// TestReadAtEOFStillReported: genuine end-of-file (server sets EOF) must
// still surface io.EOF.
func TestReadAtEOFStillReported(t *testing.T) {
	base := vfs.NewMem()
	if err := vfs.WriteFile(base, "f", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(base, "127.0.0.1:0", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialConfig(srv.Addr(), fastDStoreConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	r, err := c.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 10)
	n, err := r.ReadAt(buf, 0)
	if err != io.EOF {
		t.Fatalf("ReadAt err = %v, want io.EOF", err)
	}
	if n != 3 || string(buf[:n]) != "abc" {
		t.Fatalf("ReadAt = %d %q", n, buf[:n])
	}
}

// TestDialAllConnsFailFast: dialing a dead address must error out, not hang.
func TestDialDeadAddressFails(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	start := time.Now()
	if _, err := DialConfig(addr, fastDStoreConfig(2)); err == nil {
		t.Fatal("DialConfig to dead address succeeded")
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("dead dial took %v", d)
	}
}

// TestPoolSurvivesManyDrops runs a workload through a proxy that keeps
// killing responses; every operation must still complete and the pool must
// keep redialing.
func TestPoolSurvivesManyDrops(t *testing.T) {
	base := vfs.NewMem()
	srv, err := NewServer(base, "127.0.0.1:0", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Drop every 5th response.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var mu sync.Mutex
	seen := 0
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				up, err := net.Dial("tcp", srv.Addr())
				if err != nil {
					conn.Close()
					return
				}
				go func() {
					io.Copy(up, conn) //nolint:errcheck
					up.Close()
				}()
				buf := make([]byte, 64<<10)
				for {
					n, err := up.Read(buf)
					if err != nil {
						conn.Close()
						up.Close()
						return
					}
					mu.Lock()
					seen++
					drop := seen%5 == 0
					mu.Unlock()
					if drop {
						conn.Close()
						up.Close()
						return
					}
					if _, err := conn.Write(buf[:n]); err != nil {
						conn.Close()
						up.Close()
						return
					}
				}
			}(conn)
		}
	}()

	c, err := DialConfig(ln.Addr().String(), fastDStoreConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 10; i++ {
		name := string(rune('a' + i))
		f, err := c.Create(name)
		if err != nil {
			t.Fatalf("Create %s: %v", name, err)
		}
		if _, err := f.Write([]byte(name)); err != nil {
			t.Fatalf("Write %s: %v", name, err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("Close %s: %v", name, err)
		}
		got, err := vfs.ReadFile(base, name)
		if err != nil {
			t.Fatalf("read back %s: %v", name, err)
		}
		if string(got) != name {
			t.Fatalf("file %s = %q", name, got)
		}
	}
}
