package dstore

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"path"
	"sort"
	"sync"
	"time"

	"shield/internal/metrics"
	"shield/internal/netretry"
	"shield/internal/vfs"
)

// ErrNoQuorum reports that a replicated operation could not reach its write
// quorum (mutations) or any live replica (reads). It is a transient
// availability condition, not a data error: the caller's degraded-mode
// handling applies, and the operation may succeed once replicas rejoin.
var ErrNoQuorum = errors.New("dstore: replica quorum unavailable")

// ReplicaConfig tunes a ReplicaSet. The zero value of each field selects
// the default noted on it.
type ReplicaConfig struct {
	// WriteQuorum is the number of replicas that must acknowledge a
	// mutation before it is acknowledged to the caller (default: majority,
	// n/2+1).
	WriteQuorum int

	// Client configures each per-replica connection (pool size, deadlines,
	// retry budget).
	Client Config

	// Dirs are the namespace roots the reconcile/re-sync passes walk. The
	// vfs contract exposes no recursive listing, so the set must name every
	// directory the engine stores files under; directories later created
	// through the ReplicaSet's MkdirAll are tracked automatically.
	Dirs []string

	// ResyncEvery is the poll interval of the background re-sync loop that
	// heals stale replicas (default 200ms).
	ResyncEvery time.Duration
}

// replica is one member of the set: a storage-node client plus the
// replication state the set maintains for it. Connectivity health
// (up/suspect/down with backoff gating) lives in the netretry endpoint;
// `stale` is the data-completeness flag — a stale replica may be missing
// acknowledged mutations and is excluded from reads and from quorum counting
// until a re-sync pass proves it identical to a live replica again.
type replica struct {
	addr string
	ep   *netretry.Endpoint
	cfg  Config

	mu    sync.Mutex
	c     *Client // nil until dialed (or after a failed dial)
	stale bool
}

// client returns the replica's client, dialing it if necessary.
func (r *replica) client() (*Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.c != nil {
		return r.c, nil
	}
	c, err := DialConfig(r.addr, r.cfg)
	if err != nil {
		r.ep.Failure()
		return nil, netretry.Transport(err)
	}
	r.c = c
	return c, nil
}

func (r *replica) isStale() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stale
}

func (r *replica) setStale(v bool) {
	r.mu.Lock()
	r.stale = v
	r.mu.Unlock()
}

// fail charges err to the replica after a failed branch of a replicated
// mutation: transport errors also demote the connectivity health (the node
// may be gone). Either way the replica's copy is now missing an
// acknowledged mutation, so it leaves the read/quorum set until re-synced.
func (r *replica) fail(err error) {
	if netretry.IsTransport(err) {
		r.ep.Failure()
	}
	r.setStale(true)
}

// ReplicaSet is a vfs.FS that replicates a namespace across N storage
// nodes. Mutations fan out to every in-sync replica and are acknowledged
// once WriteQuorum replicas applied them; a replica whose branch fails is
// demoted to stale (its copy is incomplete) and healed by a background
// re-sync pass, so the surviving in-sync replicas always hold every
// acknowledged write — which is what makes read-any safe. Reads go to one
// in-sync replica and fail over on transport errors; application errors
// are answers from a live node and never trigger failover.
type ReplicaSet struct {
	cfg    ReplicaConfig
	quorum int
	reps   []*replica
	group  *netretry.Group

	// opMu is the re-sync promotion barrier: mutations hold it shared
	// while selecting fan-out targets and applying branches; the re-sync
	// pass takes it exclusively for its final verify-and-promote step, so
	// no mutation can slip between "replica proven identical" and "replica
	// marked in-sync".
	opMu sync.RWMutex

	mu       sync.Mutex
	dirs     map[string]struct{}
	writers  map[*replicatedWritable]struct{}
	readPref int // index of the last replica that served a read
	closed   bool

	done chan struct{}
	wg   sync.WaitGroup
}

// DialReplicaSet connects to the given storage nodes and reconciles their
// contents: every file under cfg.Dirs is fingerprinted on every reachable
// replica, the majority version wins (ties break toward the larger file —
// more acknowledged bytes), and minority replicas are repaired before the
// set is returned. At least WriteQuorum replicas must be reachable.
func DialReplicaSet(cfg ReplicaConfig, addrs ...string) (*ReplicaSet, error) {
	if len(addrs) == 0 {
		return nil, errors.New("dstore: replica set needs at least one address")
	}
	if cfg.WriteQuorum <= 0 {
		cfg.WriteQuorum = len(addrs)/2 + 1
	}
	if cfg.WriteQuorum > len(addrs) {
		return nil, fmt.Errorf("dstore: write quorum %d exceeds %d replicas", cfg.WriteQuorum, len(addrs))
	}
	if cfg.ResyncEvery <= 0 {
		cfg.ResyncEvery = 200 * time.Millisecond
	}
	cfg.Client = cfg.Client.withDefaults()

	rs := &ReplicaSet{
		cfg:     cfg,
		quorum:  cfg.WriteQuorum,
		group:   netretry.NewGroup(cfg.Client.BackoffBase, cfg.Client.BackoffMax, addrs...),
		dirs:    make(map[string]struct{}),
		writers: make(map[*replicatedWritable]struct{}),
		done:    make(chan struct{}),
	}
	for i, a := range addrs {
		rs.reps = append(rs.reps, &replica{addr: a, ep: rs.group.Endpoints()[i], cfg: cfg.Client})
	}
	for _, d := range cfg.Dirs {
		rs.addDir(d)
	}

	reachable := 0
	for _, r := range rs.reps {
		if _, err := r.client(); err != nil {
			r.setStale(true) // unreachable at birth: rejoin via re-sync
		} else {
			reachable++
		}
	}
	if reachable < rs.quorum {
		rs.Close()
		return nil, fmt.Errorf("%w: %d of %d replicas reachable, quorum %d",
			ErrNoQuorum, reachable, len(addrs), rs.quorum)
	}
	if err := rs.reconcile(); err != nil {
		rs.Close()
		return nil, err
	}
	rs.wg.Add(1)
	go rs.resyncLoop()
	return rs, nil
}

// Replicas reports the address, connectivity health, and sync state of
// every member, for INFO surfaces and tests.
func (rs *ReplicaSet) Replicas() []ReplicaStatus {
	out := make([]ReplicaStatus, 0, len(rs.reps))
	for _, r := range rs.reps {
		out = append(out, ReplicaStatus{
			Addr:   r.addr,
			Health: r.ep.Health(),
			InSync: !r.isStale(),
		})
	}
	return out
}

// ReplicaStatus is one replica's point-in-time state.
type ReplicaStatus struct {
	Addr   string
	Health netretry.Health
	InSync bool
}

// Close stops the re-sync loop and releases every replica connection.
//
//shield:nolockio per-replica mu only guards the client pointer; closing the pooled conns is teardown after the re-sync loop has already drained, nothing contends
func (rs *ReplicaSet) Close() error {
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return nil
	}
	rs.closed = true
	close(rs.done)
	rs.mu.Unlock()
	rs.wg.Wait()
	for _, r := range rs.reps {
		r.mu.Lock()
		if r.c != nil {
			r.c.Close()
			r.c = nil
		}
		r.mu.Unlock()
	}
	return nil
}

func (rs *ReplicaSet) addDir(dir string) {
	dir = path.Clean(dir)
	rs.mu.Lock()
	for dir != "." && dir != "/" {
		rs.dirs[dir] = struct{}{}
		dir = path.Dir(dir)
	}
	rs.mu.Unlock()
}

func (rs *ReplicaSet) dirList() []string {
	rs.mu.Lock()
	out := make([]string, 0, len(rs.dirs))
	for d := range rs.dirs {
		out = append(out, d)
	}
	rs.mu.Unlock()
	sort.Strings(out)
	return out
}

// openWriterNames returns the paths with a live replicated write handle.
// Those files are mid-append: their replica copies are kept converged by
// handle adoption, not by the file-diff pass, which must skip them.
func (rs *ReplicaSet) openWriterNames() map[string]struct{} {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make(map[string]struct{}, len(rs.writers))
	for w := range rs.writers {
		out[w.name] = struct{}{}
	}
	return out
}

// inSync returns the replicas eligible for mutations and reads: dialed (or
// dialable) and not stale.
func (rs *ReplicaSet) inSync() []*replica {
	var out []*replica
	for _, r := range rs.reps {
		if !r.isStale() {
			out = append(out, r)
		}
	}
	return out
}

// readOrder returns the in-sync replicas with the sticky read preference
// first, so sequential reads stay on one node until it fails.
func (rs *ReplicaSet) readOrder() []*replica {
	rs.mu.Lock()
	pref := rs.readPref
	rs.mu.Unlock()
	n := len(rs.reps)
	var out []*replica
	for i := 0; i < n; i++ {
		r := rs.reps[(pref+i)%n]
		if !r.isStale() {
			out = append(out, r)
		}
	}
	return out
}

func (rs *ReplicaSet) setReadPref(r *replica) {
	rs.mu.Lock()
	for i, cand := range rs.reps {
		if cand == r {
			if i != rs.readPref {
				rs.readPref = i
				rs.group.Promote(r.ep)
			}
			break
		}
	}
	rs.mu.Unlock()
}

// advanceReadPref rotates the sticky read preference off a replica that
// just failed a read, so the next open does not begin by re-probing it.
func (rs *ReplicaSet) advanceReadPref(r *replica) {
	rs.mu.Lock()
	if len(rs.reps) > 0 && rs.reps[rs.readPref] == r {
		rs.readPref = (rs.readPref + 1) % len(rs.reps)
	}
	rs.mu.Unlock()
	rs.group.Advance(r.ep)
}

// readAny runs fn against in-sync replicas in preference order until one
// gives an answer. Transport failures demote connectivity health and fail
// over to the next replica; an application error is a live node's answer
// and is returned as-is (failing over on it could mask an integrity
// refusal with a replica that has not detected the problem yet).
func (rs *ReplicaSet) readAny(fn func(c *Client) error) error {
	var lastErr error
	for _, r := range rs.readOrder() {
		c, err := r.client()
		if err != nil {
			lastErr = err
			continue
		}
		if err := fn(c); err != nil {
			if netretry.IsTransport(err) {
				r.ep.Failure()
				lastErr = err
				continue
			}
			return err
		}
		r.ep.Success()
		rs.setReadPref(r)
		return nil
	}
	if lastErr == nil {
		return fmt.Errorf("%w: no in-sync replica", ErrNoQuorum)
	}
	return fmt.Errorf("%w: %w", ErrNoQuorum, lastErr)
}

// branchOutcome is one replica's result for a fanned-out mutation.
type branchOutcome struct {
	rep *replica
	err error
}

// fanOut applies fn to every target concurrently and collects per-replica
// outcomes.
func fanOut(targets []*replica, fn func(r *replica) error) []branchOutcome {
	out := make([]branchOutcome, len(targets))
	var wg sync.WaitGroup
	for i, r := range targets {
		out[i].rep = r
		wg.Add(1)
		go func(i int, r *replica) {
			defer wg.Done()
			out[i].err = fn(r)
		}(i, r)
	}
	wg.Wait()
	return out
}

// consistentRefusal reports whether every outcome failed with the same
// application-level sentinel: the replicas agree the operation cannot be
// done (remove of a missing file, create under a full namespace, ...), so
// no copy diverged and nobody should be demoted.
func consistentRefusal(outcomes []branchOutcome) error {
	if len(outcomes) == 0 {
		return nil
	}
	for _, sentinel := range []error{vfs.ErrNotFound, vfs.ErrExist, vfs.ErrNoSpace} {
		all := true
		for _, o := range outcomes {
			if o.err == nil || netretry.IsTransport(o.err) || !errors.Is(o.err, sentinel) {
				all = false
				break
			}
		}
		if all {
			return outcomes[0].err
		}
	}
	return nil
}

// settle converts fan-out outcomes into the operation's result: all-success
// is success; a consistent refusal passes through undemoted; otherwise every
// failed branch demotes its replica and the operation succeeds iff the
// successes reach quorum.
func (rs *ReplicaSet) settle(outcomes []branchOutcome) error {
	succ := 0
	var firstErr error
	for _, o := range outcomes {
		if o.err == nil {
			succ++
		} else if firstErr == nil {
			firstErr = o.err
		}
	}
	if succ == len(outcomes) {
		return nil
	}
	if err := consistentRefusal(outcomes); err != nil {
		return err
	}
	for _, o := range outcomes {
		if o.err != nil {
			o.rep.fail(o.err)
		}
	}
	if succ >= rs.quorum {
		return nil
	}
	metrics.Net.QuorumShortfalls.Add(1)
	return fmt.Errorf("%w: %d of %d acks (quorum %d): %w",
		ErrNoQuorum, succ, len(outcomes), rs.quorum, firstErr)
}

// mutate fans a namespace mutation out to every in-sync replica under the
// promotion barrier's shared lock.
func (rs *ReplicaSet) mutate(fn func(c *Client) error) error {
	rs.opMu.RLock()
	defer rs.opMu.RUnlock()
	targets := rs.inSync()
	if len(targets) < rs.quorum {
		metrics.Net.QuorumShortfalls.Add(1)
		return fmt.Errorf("%w: %d in-sync replicas, quorum %d", ErrNoQuorum, len(targets), rs.quorum)
	}
	return rs.settle(fanOut(targets, func(r *replica) error {
		c, err := r.client()
		if err != nil {
			return err
		}
		return fn(c)
	}))
}

// Create implements vfs.FS: the returned handle appends to every in-sync
// replica and acknowledges once the write quorum has the bytes.
//
//shield:nolockio opMu (shared) is the promotion barrier; see mutate
func (rs *ReplicaSet) Create(name string) (vfs.WritableFile, error) {
	rs.opMu.RLock()
	defer rs.opMu.RUnlock()
	targets := rs.inSync()
	if len(targets) < rs.quorum {
		metrics.Net.QuorumShortfalls.Add(1)
		return nil, fmt.Errorf("%w: %d in-sync replicas, quorum %d", ErrNoQuorum, len(targets), rs.quorum)
	}
	files := make([]vfs.WritableFile, len(targets))
	outcomes := make([]branchOutcome, len(targets))
	var wg sync.WaitGroup
	for i, r := range targets {
		outcomes[i].rep = r
		wg.Add(1)
		go func(i int, r *replica) {
			defer wg.Done()
			c, err := r.client()
			if err != nil {
				outcomes[i].err = err
				return
			}
			f, err := c.Create(name)
			if err != nil {
				outcomes[i].err = err
				return
			}
			files[i] = f
		}(i, r)
	}
	wg.Wait()
	if err := rs.settle(outcomes); err != nil {
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
		return nil, err
	}
	w := &replicatedWritable{rs: rs, name: name}
	for i, o := range outcomes {
		if o.err == nil && files[i] != nil {
			w.branches = append(w.branches, wbranch{rep: o.rep, f: files[i]})
		}
	}
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		for _, b := range w.branches {
			b.f.Close()
		}
		return nil, ErrClosed
	}
	rs.writers[w] = struct{}{}
	rs.mu.Unlock()
	return w, nil
}

// openAny opens name on the first in-sync replica that answers, in sticky
// preference order, recording which replica serves the handle so a later
// failover can charge it.
func (rs *ReplicaSet) openAny(name string) (*replica, vfs.RandomAccessFile, int64, error) {
	var lastErr error
	for _, r := range rs.readOrder() {
		c, err := r.client()
		if err != nil {
			lastErr = err
			continue
		}
		f, err := c.Open(name)
		if err != nil {
			if netretry.IsTransport(err) {
				r.ep.Failure()
				lastErr = err
				continue
			}
			return nil, nil, 0, err
		}
		size, err := f.Size()
		if err != nil {
			f.Close()
			return nil, nil, 0, err
		}
		r.ep.Success()
		rs.setReadPref(r)
		return r, f, size, nil
	}
	if lastErr == nil {
		return nil, nil, 0, fmt.Errorf("%w: no in-sync replica", ErrNoQuorum)
	}
	return nil, nil, 0, fmt.Errorf("%w: %w", ErrNoQuorum, lastErr)
}

// Open implements vfs.FS with read-any-failover semantics.
func (rs *ReplicaSet) Open(name string) (vfs.RandomAccessFile, error) {
	rep, f, size, err := rs.openAny(name)
	if err != nil {
		return nil, err
	}
	return &replicatedRandom{rs: rs, name: name, rep: rep, f: f, size: size}, nil
}

// OpenSequential implements vfs.FS via positional reads.
func (rs *ReplicaSet) OpenSequential(name string) (vfs.SequentialFile, error) {
	r, err := rs.Open(name)
	if err != nil {
		return nil, err
	}
	return &remoteSequential{r: r}, nil
}

// Remove implements vfs.FS.
func (rs *ReplicaSet) Remove(name string) error {
	return rs.mutate(func(c *Client) error { return c.Remove(name) })
}

// Rename implements vfs.FS.
func (rs *ReplicaSet) Rename(oldname, newname string) error {
	return rs.mutate(func(c *Client) error { return c.Rename(oldname, newname) })
}

// List implements vfs.FS.
func (rs *ReplicaSet) List(dir string) ([]vfs.FileInfo, error) {
	var infos []vfs.FileInfo
	err := rs.readAny(func(c *Client) error {
		var err error
		infos, err = c.List(dir)
		return err
	})
	return infos, err
}

// MkdirAll implements vfs.FS and registers the directory with the
// re-sync walker.
func (rs *ReplicaSet) MkdirAll(dir string) error {
	if err := rs.mutate(func(c *Client) error { return c.MkdirAll(dir) }); err != nil {
		return err
	}
	rs.addDir(dir)
	return nil
}

// SyncDir implements vfs.FS.
func (rs *ReplicaSet) SyncDir(dir string) error {
	return rs.mutate(func(c *Client) error { return c.SyncDir(dir) })
}

// Stat implements vfs.FS.
func (rs *ReplicaSet) Stat(name string) (vfs.FileInfo, error) {
	var info vfs.FileInfo
	err := rs.readAny(func(c *Client) error {
		var err error
		info, err = c.Stat(name)
		return err
	})
	return info, err
}

// Digest returns the tag-chain digest of a sealed file from any in-sync
// replica (read-any with failover), for callers that only need one answer.
func (rs *ReplicaSet) Digest(name string, headerLen int64) ([]byte, error) {
	var d []byte
	err := rs.readAny(func(c *Client) error {
		var err error
		d, err = c.Digest(name, headerLen)
		return err
	})
	return d, err
}

// DigestAll audits a sealed file on every in-sync replica and requires the
// answers to agree: a replica acknowledged as holding the bytes that now
// reports a different tag chain has been tampered with (or silently
// corrupted), which replication must surface, never paper over. Replicas
// that are stale (entitled to lag) or unreachable (cannot be audited) are
// skipped; at least one replica must answer.
func (rs *ReplicaSet) DigestAll(name string, headerLen int64) ([]byte, error) {
	type answer struct {
		addr   string
		digest []byte
	}
	var answers []answer
	for _, r := range rs.inSync() {
		c, err := r.client()
		if err != nil {
			continue
		}
		d, err := c.Digest(name, headerLen)
		if err != nil {
			if netretry.IsTransport(err) {
				r.ep.Failure()
				continue
			}
			return nil, err
		}
		answers = append(answers, answer{addr: r.addr, digest: d})
	}
	if len(answers) == 0 {
		return nil, fmt.Errorf("%w: no replica answered digest audit of %s", ErrNoQuorum, name)
	}
	for _, a := range answers[1:] {
		if !bytes.Equal(a.digest, answers[0].digest) {
			return nil, fmt.Errorf("dstore: replica divergence on %s: %s and %s disagree on tag-chain digest (%x vs %x)",
				name, answers[0].addr, a.addr, answers[0].digest, a.digest)
		}
	}
	return answers[0].digest, nil
}

// wbranch is one replica's leg of a replicated write handle.
type wbranch struct {
	rep *replica
	f   vfs.WritableFile
}

// replicatedWritable appends to every in-sync replica. Each branch keeps
// its own packet buffer and per-handle sequence numbers, so server-side
// dedup still protects every replica independently against re-delivered
// packets. A branch whose replica fails is dropped and the replica demoted;
// the handle stays usable while the surviving branches reach quorum.
type replicatedWritable struct {
	rs   *ReplicaSet
	name string

	mu       sync.Mutex
	branches []wbranch
	closed   bool
}

// apply runs op on every branch, drops the branches that failed (demoting
// their replicas), and enforces quorum on the survivors.
func (w *replicatedWritable) apply(op func(f vfs.WritableFile) error) error {
	outcomes := make([]branchOutcome, len(w.branches))
	var wg sync.WaitGroup
	for i := range w.branches {
		outcomes[i].rep = w.branches[i].rep
		wg.Add(1)
		go func(i int, f vfs.WritableFile) {
			defer wg.Done()
			outcomes[i].err = op(f)
		}(i, w.branches[i].f)
	}
	wg.Wait()
	if err := consistentRefusal(outcomes); err != nil {
		return err
	}
	var firstErr error
	kept := w.branches[:0]
	for i, o := range outcomes {
		if o.err == nil {
			kept = append(kept, w.branches[i])
			continue
		}
		if firstErr == nil {
			firstErr = o.err
		}
		o.rep.fail(o.err)
		w.branches[i].f.Close()
	}
	w.branches = kept
	if firstErr == nil {
		return nil
	}
	if len(w.branches) >= w.rs.quorum {
		return nil
	}
	metrics.Net.QuorumShortfalls.Add(1)
	return fmt.Errorf("%w: %d of %d write branches alive (quorum %d): %w",
		ErrNoQuorum, len(w.branches), len(outcomes), w.rs.quorum, firstErr)
}

// Write implements io.Writer: bytes are accepted by every branch's packet
// buffer (and shipped when a packet fills). Reported n follows the branch
// buffers' contract: bytes are accepted locally even when a branch errors.
func (w *replicatedWritable) Write(p []byte) (int, error) {
	w.rs.opMu.RLock()
	defer w.rs.opMu.RUnlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	err := w.apply(func(f vfs.WritableFile) error { return vfs.WriteFull(f, p) })
	return len(p), err
}

// Sync flushes every branch to durable storage on its replica.
//
//shield:nolockio opMu (shared) is the promotion barrier and mu serializes branch I/O against handle adoption by the re-sync pass
func (w *replicatedWritable) Sync() error {
	w.rs.opMu.RLock()
	defer w.rs.opMu.RUnlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.apply(func(f vfs.WritableFile) error { return f.Sync() })
}

// Close closes every branch and unregisters the handle.
//
//shield:nolockio opMu (shared) is the promotion barrier and mu serializes branch I/O against handle adoption by the re-sync pass
func (w *replicatedWritable) Close() error {
	w.rs.opMu.RLock()
	defer w.rs.opMu.RUnlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	err := w.apply(func(f vfs.WritableFile) error { return f.Close() })
	w.closed = true
	w.branches = nil
	w.rs.mu.Lock()
	delete(w.rs.writers, w)
	w.rs.mu.Unlock()
	return err
}

// adopt grafts a branch for a rejoining replica onto a live handle: with
// the handle locked, every live branch is flushed (so the source file holds
// exactly the handle's shipped bytes), the bytes are copied into a fresh
// handle on the target, and that handle joins the branch list so all
// subsequent appends reach the target too. Called by the re-sync pass with
// the promotion barrier held exclusively.
//
//shield:nolockio mu must be held across flush-copy-graft or a concurrent append would slip between the copy and the graft and be lost on the target
//shield:nosyncdir the grafted branch joins w.branches, so the engine's own SyncDir fans out to the target like every other branch; adoption adds no extra durability point
func (w *replicatedWritable) adopt(target *replica) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	for _, b := range w.branches {
		if b.rep == target {
			return nil
		}
	}
	if err := w.apply(func(f vfs.WritableFile) error { return f.Sync() }); err != nil {
		return err
	}
	if len(w.branches) == 0 {
		return fmt.Errorf("%w: no live branch to adopt %s from", ErrNoQuorum, w.name)
	}
	src, err := w.branches[0].rep.client()
	if err != nil {
		return err
	}
	data, err := vfs.ReadFile(src, w.name)
	if err != nil {
		return err
	}
	tc, err := target.client()
	if err != nil {
		return err
	}
	f, err := tc.Create(w.name)
	if err != nil {
		return err
	}
	if err := vfs.WriteFull(f, data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	metrics.Net.ResyncBytes.Add(int64(len(data)))
	metrics.Net.Endpoint(target.addr).ResyncBytes.Add(int64(len(data)))
	w.branches = append(w.branches, wbranch{rep: target, f: f})
	return nil
}

// replicatedRandom is a read handle with failover: a transport error
// moves the handle to another in-sync replica and re-issues the read at
// the same offset (positional reads make this safe).
type replicatedRandom struct {
	rs   *ReplicaSet
	name string

	mu   sync.Mutex
	rep  *replica
	f    vfs.RandomAccessFile
	size int64
}

// ReadAt implements io.ReaderAt.
//
//shield:nolockio mu serializes the handle swap during failover; positional reads carry no shared cursor but the handle pointer must not race
func (r *replicatedRandom) ReadAt(p []byte, off int64) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, err := r.f.ReadAt(p, off)
	if err == nil || !netretry.IsTransport(err) {
		return n, err
	}
	// The node serving this handle went away: charge it, rotate the sticky
	// preference off it, reopen on another in-sync replica, and retry the
	// same positional read.
	r.rep.ep.Failure()
	r.rs.advanceReadPref(r.rep)
	rep, nf, _, oerr := r.rs.openAny(r.name)
	if oerr != nil {
		return n, err
	}
	r.f.Close()
	r.rep, r.f = rep, nf
	return r.f.ReadAt(p, off)
}

func (r *replicatedRandom) Size() (int64, error) { return r.size, nil }

//shield:nolockio mu only pins the handle pointer against a concurrent failover swap; the underlying close is a pooled-conn release, not a wire round
func (r *replicatedRandom) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.f.Close()
}

// fileVer is a replica's version of one file for the diff passes: size plus
// content hash. A negative size marks "absent".
type fileVer struct {
	size int64
	sum  string
}

var absentVer = fileVer{size: -1}

// scan fingerprints every file under the registered directories on one
// replica, skipping paths in omit (open write handles, kept converged by
// adoption instead).
func (rs *ReplicaSet) scan(c *Client, omit map[string]struct{}) (map[string]fileVer, error) {
	out := make(map[string]fileVer)
	for _, d := range rs.dirList() {
		infos, err := c.List(d)
		if err != nil {
			if errors.Is(err, vfs.ErrNotFound) {
				continue
			}
			return nil, err
		}
		for _, fi := range infos {
			p := path.Join(d, fi.Name)
			if _, open := omit[p]; open {
				continue
			}
			sum, size, err := c.Sum(p)
			if err != nil {
				if errors.Is(err, vfs.ErrNotFound) {
					continue // removed while scanning
				}
				return nil, err
			}
			out[p] = fileVer{size: size, sum: string(sum)}
		}
	}
	return out, nil
}

// repair makes target's files match canonical, copying divergent files from
// sources (replicas known to hold the canonical version) and deleting files
// canonical does not contain. Returns the number of bytes shipped.
func (rs *ReplicaSet) repair(target *Client, targetState, canonical map[string]fileVer, source func(p string) *Client) (int64, error) {
	for _, d := range rs.dirList() {
		if err := target.MkdirAll(d); err != nil {
			return 0, err
		}
	}
	var shipped int64
	paths := make([]string, 0, len(canonical))
	for p := range canonical {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		want := canonical[p]
		if targetState[p] == want {
			continue
		}
		src := source(p)
		if src == nil {
			return shipped, fmt.Errorf("dstore: no source replica for %s during re-sync", p)
		}
		data, err := vfs.ReadFile(src, p)
		if errors.Is(err, vfs.ErrNotFound) {
			continue // removed after the scan; the next pass sees the settled state
		}
		if err != nil {
			return shipped, err
		}
		if sum := sha256.Sum256(data); int64(len(data)) != want.size || string(sum[:]) != want.sum {
			// The file changed under the scan (engine mutation between
			// fingerprint and copy); the next pass sees the settled state.
			continue
		}
		if err := vfs.WriteFile(target, p, data); err != nil {
			return shipped, err
		}
		if err := target.SyncDir(path.Dir(p)); err != nil {
			return shipped, err
		}
		shipped += int64(len(data))
	}
	for p := range targetState {
		if _, keep := canonical[p]; !keep {
			if err := target.Remove(p); err != nil && !errors.Is(err, vfs.ErrNotFound) {
				return shipped, err
			}
		}
	}
	return shipped, nil
}

// reconcile establishes a canonical namespace by majority vote across the
// reachable replicas and repairs the minority. It runs at Dial time — a
// compute node that restarts cannot know which replica lagged behind a
// crash, but the replicas can out-vote each other: for every file, the
// (size, hash) version held by the most replicas wins, ties breaking
// toward the larger file (more acknowledged bytes, and an acknowledged
// write exists on quorum ≥ majority replicas, so the majority never votes
// away acknowledged data).
func (rs *ReplicaSet) reconcile() error {
	type scanned struct {
		rep   *replica
		c     *Client
		state map[string]fileVer
	}
	var scans []scanned
	omit := rs.openWriterNames()
	for _, r := range rs.reps {
		c, err := r.client()
		if err != nil {
			r.setStale(true)
			continue
		}
		state, err := rs.scan(c, omit)
		if err != nil {
			r.fail(err)
			continue
		}
		scans = append(scans, scanned{rep: r, c: c, state: state})
	}
	if len(scans) < rs.quorum {
		return fmt.Errorf("%w: %d of %d replicas scannable, quorum %d",
			ErrNoQuorum, len(scans), len(rs.reps), rs.quorum)
	}

	union := make(map[string]struct{})
	for _, s := range scans {
		for p := range s.state {
			union[p] = struct{}{}
		}
	}
	canonical := make(map[string]fileVer)
	for p := range union {
		votes := make(map[fileVer]int)
		for _, s := range scans {
			v, ok := s.state[p]
			if !ok {
				v = absentVer
			}
			votes[v]++
		}
		best := absentVer
		bestN := 0
		for v, n := range votes {
			switch {
			case n > bestN:
				best, bestN = v, n
			case n == bestN && v.size > best.size:
				best = v
			case n == bestN && v.size == best.size && v.sum > best.sum:
				best = v
			}
		}
		if best.size >= 0 {
			canonical[p] = best
		}
	}

	source := func(p string) *Client {
		want, ok := canonical[p]
		if !ok {
			return nil
		}
		for _, s := range scans {
			if s.state[p] == want {
				return s.c
			}
		}
		return nil
	}
	for _, s := range scans {
		divergent := false
		for p, want := range canonical {
			if s.state[p] != want {
				divergent = true
				break
			}
		}
		if !divergent {
			for p := range s.state {
				if _, ok := canonical[p]; !ok {
					divergent = true
					break
				}
			}
		}
		if !divergent {
			s.rep.setStale(false)
			continue
		}
		shipped, err := rs.repair(s.c, s.state, canonical, source)
		if shipped > 0 {
			metrics.Net.ResyncBytes.Add(shipped)
			metrics.Net.Endpoint(s.rep.addr).ResyncBytes.Add(shipped)
		}
		if err != nil {
			s.rep.fail(err)
			continue
		}
		metrics.Net.Resyncs.Add(1)
		metrics.Net.Endpoint(s.rep.addr).Resyncs.Add(1)
		s.rep.setStale(false)
	}
	if len(rs.inSync()) < rs.quorum {
		return fmt.Errorf("%w: fewer than %d replicas reconciled", ErrNoQuorum, rs.quorum)
	}
	return nil
}

// resyncLoop is the background healer: it watches for stale replicas and
// re-syncs each one from a live replica, then promotes it back into the
// read/quorum set under the promotion barrier.
func (rs *ReplicaSet) resyncLoop() {
	defer rs.wg.Done()
	for {
		if !netretry.Sleep(rs.cfg.ResyncEvery, rs.done) {
			return
		}
		rs.resyncPass()
	}
}

// resyncPass heals every stale replica it can reach. With no in-sync
// replica left (total outage), it falls back to a majority re-baseline —
// but only while no write handles are open, since reconcile cannot adopt
// handles whose branches are all gone.
func (rs *ReplicaSet) resyncPass() {
	var stale []*replica
	for _, r := range rs.reps {
		if r.isStale() {
			stale = append(stale, r)
		}
	}
	if len(stale) == 0 {
		return
	}
	if len(rs.inSync()) == 0 {
		rs.opMu.Lock()
		if len(rs.openWriterNames()) == 0 {
			rs.reconcile() //nolint:errcheck // next pass retries; callers keep seeing ErrNoQuorum meanwhile
		}
		rs.opMu.Unlock()
		return
	}
	for _, r := range stale {
		select {
		case <-rs.done:
			return
		default:
		}
		if err := rs.resyncReplica(r); err == nil {
			metrics.Net.Resyncs.Add(1)
			metrics.Net.Endpoint(r.addr).Resyncs.Add(1)
		}
	}
}

// resyncReplica brings one stale replica back: bulk-copy the diff from an
// in-sync source without blocking traffic, then — under the promotion
// barrier — adopt open write handles, verify the remaining diff, and mark
// the replica in-sync.
//
//shield:nolockio opMu (exclusive) IS the promotion barrier: the final verify and the in-sync flip must exclude concurrent mutations or an acknowledged write could land only on the old quorum
func (rs *ReplicaSet) resyncReplica(target *replica) error {
	tc, err := target.client()
	if err != nil {
		return err
	}
	srcs := rs.inSync()
	if len(srcs) == 0 {
		return fmt.Errorf("%w: no in-sync source", ErrNoQuorum)
	}
	sc, err := srcs[0].client()
	if err != nil {
		return err
	}

	// Phase 1 (concurrent with traffic): bulk diff-copy. Anything that
	// changes underneath is caught by the verify inside the barrier.
	omit := rs.openWriterNames()
	canonical, err := rs.scan(sc, omit)
	if err != nil {
		return err
	}
	targetState, err := rs.scan(tc, omit)
	if err != nil {
		target.ep.Failure()
		return err
	}
	shipped, err := rs.repair(tc, targetState, canonical, func(string) *Client { return sc })
	if shipped > 0 {
		metrics.Net.ResyncBytes.Add(shipped)
		metrics.Net.Endpoint(target.addr).ResyncBytes.Add(shipped)
	}
	if err != nil {
		return err
	}

	// Phase 2 (exclusive): no mutation can start until the replica is
	// promoted, so what we verify here is what the replica holds when the
	// next mutation selects its targets.
	rs.opMu.Lock()
	defer rs.opMu.Unlock()
	if srcs[0].isStale() {
		return fmt.Errorf("dstore: re-sync source %s went stale mid-pass", srcs[0].addr)
	}
	rs.mu.Lock()
	writers := make([]*replicatedWritable, 0, len(rs.writers))
	for w := range rs.writers {
		writers = append(writers, w)
	}
	rs.mu.Unlock()
	for _, w := range writers {
		if err := w.adopt(target); err != nil {
			return err
		}
	}
	omit = rs.openWriterNames()
	canonical, err = rs.scan(sc, omit)
	if err != nil {
		return err
	}
	targetState, err = rs.scan(tc, omit)
	if err != nil {
		target.ep.Failure()
		return err
	}
	shipped, err = rs.repair(tc, targetState, canonical, func(string) *Client { return sc })
	if shipped > 0 {
		metrics.Net.ResyncBytes.Add(shipped)
		metrics.Net.Endpoint(target.addr).ResyncBytes.Add(shipped)
	}
	if err != nil {
		return err
	}
	target.setStale(false)
	target.ep.Success()
	return nil
}
