package dstore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"shield/internal/crypt"
	"shield/internal/vfs"
)

func newPair(t *testing.T, latency time.Duration, bw int64) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer(vfs.NewMem(), "127.0.0.1:0", latency, bw)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(srv.Addr(), 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return srv, client
}

func TestRemoteRoundTrip(t *testing.T) {
	_, client := newPair(t, 0, 0)

	payload := make([]byte, 200_000) // crosses packet boundaries
	rand.New(rand.NewSource(1)).Read(payload)
	if err := vfs.WriteFile(client, "dir/file.bin", payload); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(client, "dir/file.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("remote round trip mismatch")
	}

	// Positional reads at arbitrary offsets.
	f, err := client.Open("dir/file.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 1000)
	if _, err := f.ReadAt(buf, 150_000); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload[150_000:151_000]) {
		t.Fatal("remote ReadAt mismatch")
	}
	if size, _ := f.Size(); size != int64(len(payload)) {
		t.Fatalf("size %d", size)
	}
}

func TestRemoteSmallWritesBufferUntilSync(t *testing.T) {
	srv, client := newPair(t, 0, 0)
	f, err := client.Create("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := f.Write([]byte("tiny record ")); err != nil {
			t.Fatal(err)
		}
	}
	// Small writes aggregate client-side: at most the create RPC hit the
	// server so far.
	if ops := srv.Stats().WriteOps; ops != 0 {
		t.Fatalf("expected 0 server write ops before sync, got %d", ops)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if ops := srv.Stats().WriteOps; ops != 1 {
		t.Fatalf("expected exactly 1 packet after sync, got %d", ops)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := client.Stat("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != int64(100*len("tiny record ")) {
		t.Fatalf("size %d", info.Size)
	}
}

func TestRemoteFSOps(t *testing.T) {
	_, client := newPair(t, 0, 0)
	if err := client.MkdirAll("a/b"); err != nil {
		t.Fatal(err)
	}
	vfs.WriteFile(client, "a/b/x", []byte("1"))
	vfs.WriteFile(client, "a/b/y", []byte("22"))

	infos, err := client.List("a/b")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Name != "x" || infos[1].Name != "y" {
		t.Fatalf("list: %v", infos)
	}
	if err := client.Rename("a/b/x", "a/b/z"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Stat("a/b/x"); !errors.Is(err, vfs.ErrNotFound) {
		t.Fatalf("stat renamed-away: %v", err)
	}
	if err := client.Remove("a/b/z"); err != nil {
		t.Fatal(err)
	}
	if err := client.Remove("a/b/z"); !errors.Is(err, vfs.ErrNotFound) {
		t.Fatalf("sentinel across wire: %v", err)
	}
}

func TestRemoteConcurrent(t *testing.T) {
	_, client := newPair(t, 0, 0)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("f%d", i)
			payload := bytes.Repeat([]byte{byte(i)}, 10_000)
			for j := 0; j < 20; j++ {
				if err := vfs.WriteFile(client, name, payload); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				got, err := vfs.ReadFile(client, name)
				if err != nil || !bytes.Equal(got, payload) {
					t.Errorf("read mismatch: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestBandwidthEmulation(t *testing.T) {
	// 1 MiB at 8 MiB/s ≈ 125ms minimum.
	_, client := newPair(t, 0, 8<<20)
	start := time.Now()
	if err := vfs.WriteFile(client, "big", make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("bandwidth cap not enforced: %v", elapsed)
	}
}

func TestServerIOAccounting(t *testing.T) {
	srv, client := newPair(t, 0, 0)
	vfs.WriteFile(client, "f", make([]byte, 70_000))
	vfs.ReadFile(client, "f")
	s := srv.Stats()
	if s.BytesWritten != 70_000 {
		t.Fatalf("bytes written %d", s.BytesWritten)
	}
	if s.BytesRead != 70_000 {
		t.Fatalf("bytes read %d", s.BytesRead)
	}
}

func TestRemoteDigest(t *testing.T) {
	_, client := newPair(t, 0, 0)

	// Seal a payload with a fake 100-byte plaintext header in front, write
	// it through the client, and ask the node for the tag-chain digest.
	dek, err := crypt.NewDEK()
	if err != nil {
		t.Fatal(err)
	}
	sealer, err := crypt.NewSealer(dek, []byte("prefix00"), []byte("hdr"))
	if err != nil {
		t.Fatal(err)
	}
	header := bytes.Repeat([]byte{0x5A}, 100)
	payload := make([]byte, 2*crypt.SealedBlockSize+77)
	rand.New(rand.NewSource(42)).Read(payload)

	f, err := client.Create("sst")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(header); err != nil {
		t.Fatal(err)
	}
	w := crypt.NewSealedWriter(f, sealer)
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	want, ok := w.FileDigest()
	if !ok {
		t.Fatal("writer has no digest")
	}

	got, err := client.Digest("sst", int64(len(header)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("remote digest %x != writer digest %x", got, want)
	}

	// A tampered remote body must change the digest the node reports.
	raw, err := vfs.ReadFile(client, "sst")
	if err != nil {
		t.Fatal(err)
	}
	raw[len(header)+crypt.SealedBlockSize+3] ^= 0xFF // inside block 0's tag
	if err := vfs.WriteFile(client, "sst", raw); err != nil {
		t.Fatal(err)
	}
	got2, err := client.Digest("sst", int64(len(header)))
	if err == nil && bytes.Equal(got2, want) {
		// Flips outside tag bytes legitimately leave the digest unchanged;
		// flip a tag byte explicitly to pin the property down.
		raw[len(header)+crypt.SealedBlockSize] ^= 0xFF
		if err := vfs.WriteFile(client, "sst", raw); err != nil {
			t.Fatal(err)
		}
		got2, err = client.Digest("sst", int64(len(header)))
	}
	if err == nil && bytes.Equal(got2, want) {
		t.Fatal("digest unchanged after tampering with sealed body")
	}

	// Errors surface: missing file and bad offset.
	if _, err := client.Digest("nope", 0); err == nil {
		t.Fatal("digest of missing file succeeded")
	}
	if _, err := client.Digest("sst", 1<<40); err == nil {
		t.Fatal("digest with absurd offset succeeded")
	}
}
