package dstore

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"shield/internal/metrics"
	"shield/internal/netretry"
	"shield/internal/vfs"
)

// ErrClosed reports that the client has been closed.
var ErrClosed = errors.New("dstore: client closed")

// Config tunes the client's pool size and fault-tolerance behavior. The
// zero value selects the defaults noted per field.
type Config struct {
	// Conns is the connection-pool size (default 1).
	Conns int

	// DialTimeout bounds each connection attempt (default 1s).
	DialTimeout time.Duration

	// RequestTimeout is the per-attempt deadline covering send and
	// receive, so a hung storage node cannot wedge the engine
	// (default 10s — remote writes ride the emulated link's bandwidth
	// cap, so the deadline must cover packet serialization time).
	RequestTimeout time.Duration

	// MaxAttempts is the total number of transport attempts per request
	// (default 3).
	MaxAttempts int

	// BackoffBase and BackoffMax shape the jittered exponential backoff
	// between attempts (defaults 5ms and 250ms).
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

func (cfg Config) withDefaults() Config {
	if cfg.Conns < 1 {
		cfg.Conns = 1
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 5 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 250 * time.Millisecond
	}
	return cfg
}

// Client is a vfs.FS backed by a remote storage node. It is safe for
// concurrent use; requests multiplex over a small connection pool so
// compaction traffic does not head-of-line-block foreground reads.
//
// Fault tolerance: every request carries a deadline; a connection that
// sees a transport error is discarded (a gob stream cannot be resynced
// mid-conversation) and its pool slot redials lazily; idempotent requests
// retry with jittered backoff. Writes are made idempotent by per-handle
// sequence numbers the server deduplicates, so a retried packet whose
// response was lost is not appended twice.
type Client struct {
	addr string
	cfg  Config

	// pool holds connection slots. A slot with a nil conn marks a slot
	// whose connection was discarded; checkout redials it. The slot count
	// is constant, so checkout never blocks forever on a drained pool.
	pool chan *clientConn
	done chan struct{}

	mu     sync.Mutex
	live   map[*clientConn]struct{} // dialed conns, force-closed on Close
	closed bool
}

type clientConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a storage node with a pool of nConns connections
// (minimum 1) and default fault-tolerance settings.
func Dial(addr string, nConns int) (*Client, error) {
	return DialConfig(addr, Config{Conns: nConns})
}

// DialConfig is Dial with explicit retry/timeout settings.
func DialConfig(addr string, cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	c := &Client{
		addr: addr,
		cfg:  cfg,
		pool: make(chan *clientConn, cfg.Conns),
		done: make(chan struct{}),
		live: make(map[*clientConn]struct{}),
	}
	for i := 0; i < cfg.Conns; i++ {
		cc, err := c.dial()
		if err != nil {
			c.Close()
			return nil, err
		}
		c.pool <- cc
	}
	return c, nil
}

func (c *Client) dial() (*clientConn, error) {
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("dstore: dial %s: %w", c.addr, err)
	}
	cc := &clientConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	c.live[cc] = struct{}{}
	c.mu.Unlock()
	return cc, nil
}

// Close releases all connections and unblocks goroutines waiting on the
// pool or retrying: they fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.done)
	for cc := range c.live {
		cc.conn.Close()
	}
	c.live = make(map[*clientConn]struct{})
	c.mu.Unlock()

	// Drain idle slots so their conns are closed too (checked-out conns
	// were force-closed above and will be dropped on return).
	for {
		select {
		case cc := <-c.pool:
			if cc.conn != nil {
				cc.conn.Close()
			}
		default:
			return nil
		}
	}
}

// checkout takes a pool slot, redialing it if its connection was
// discarded. It respects Close: a waiter blocked on an empty pool returns
// ErrClosed instead of hanging forever.
func (c *Client) checkout() (*clientConn, error) {
	select {
	case cc := <-c.pool:
		if cc.conn == nil {
			ncc, err := c.dial()
			if err != nil {
				c.putBack(cc) // keep the slot so later requests can retry the dial
				return nil, err
			}
			metrics.Net.Redials.Add(1)
			return ncc, nil
		}
		return cc, nil
	case <-c.done:
		return nil, ErrClosed
	}
}

// putBack returns a slot to the pool (or closes its conn after Close).
func (c *Client) putBack(cc *clientConn) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		if cc.conn != nil {
			cc.conn.Close()
		}
		return
	}
	c.pool <- cc
}

// discard closes a connection that saw a transport error — its gob stream
// may be desynced and would poison every later request — and returns an
// empty slot to the pool for a lazy redial.
func (c *Client) discard(cc *clientConn) {
	cc.conn.Close()
	c.mu.Lock()
	delete(c.live, cc)
	c.mu.Unlock()
	c.putBack(&clientConn{})
}

// retryable reports whether a request may be re-sent after a transport
// failure that could have delivered it. Reads, metadata ops, syncs, and
// closes are idempotent; writes are deduplicated server-side by sequence
// number; Remove/Rename retried after being applied surface ErrNotFound,
// which callers treat as the (already reached) goal state.
func retryable(req *Request) bool {
	return req.Op != OpWrite || req.Seq != 0
}

// roundTrip sends one request with deadlines, backoff, and redial.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			metrics.Net.Retries.Add(1)
			if !netretry.Sleep(netretry.Delay(attempt-1, c.cfg.BackoffBase, c.cfg.BackoffMax), c.done) {
				return nil, ErrClosed
			}
		}
		cc, err := c.checkout()
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return nil, err
			}
			lastErr = err // dial failure: nothing sent, always retryable
			continue
		}
		cc.conn.SetDeadline(time.Now().Add(c.cfg.RequestTimeout)) //nolint:errcheck
		err = cc.enc.Encode(req)
		if err == nil {
			var resp Response
			if err = cc.dec.Decode(&resp); err == nil {
				cc.conn.SetDeadline(time.Time{}) //nolint:errcheck
				c.putBack(cc)
				if resp.Err != "" {
					return &resp, mapRemoteError(resp.Err)
				}
				return &resp, nil
			}
		}
		if netretry.IsTimeout(err) {
			metrics.Net.Timeouts.Add(1)
		}
		c.discard(cc)
		lastErr = err
		if netretry.Permanent(err) {
			return nil, fmt.Errorf("dstore: %w (not retried: permanent)", err)
		}
		if !retryable(req) {
			return nil, netretry.Transport(fmt.Errorf("dstore: %w (not retried: non-idempotent)", err))
		}
	}
	// Exhausted attempts on dial/send/receive failures: the node itself is
	// unreachable or resetting. The transport class tells replica-set callers
	// this is a node-health event (demote, fail over) rather than an answer
	// from a live node, which must never trigger failover.
	return nil, netretry.Transport(fmt.Errorf("dstore: request failed after %d attempts: %w",
		c.cfg.MaxAttempts, lastErr))
}

// mapRemoteError restores vfs sentinel errors across the wire.
func mapRemoteError(msg string) error {
	switch {
	case strings.Contains(msg, vfs.ErrNotFound.Error()):
		return fmt.Errorf("%w (remote: %s)", vfs.ErrNotFound, msg)
	case strings.Contains(msg, vfs.ErrExist.Error()):
		return fmt.Errorf("%w (remote: %s)", vfs.ErrExist, msg)
	case strings.Contains(msg, vfs.ErrNoSpace.Error()):
		// The storage node is full. Restoring the sentinel lets the engine's
		// degraded-mode handling fire, and marks the error permanent so no
		// retry layer wastes attempts on it.
		return fmt.Errorf("%w (remote: %s)", vfs.ErrNoSpace, msg)
	case strings.Contains(msg, vfs.ErrInjected.Error()):
		// Injected faults model transient media errors on the node; restore
		// the sentinel so fault harnesses can classify them as retryable.
		return fmt.Errorf("%w (remote: %s)", vfs.ErrInjected, msg)
	default:
		return errors.New(msg)
	}
}

// writePacketSize is the client-side write-aggregation buffer, modeling the
// packet streaming of distributed-filesystem clients (HDFS's DFSOutputStream
// sends 64 KiB packets): appends accumulate locally and ship in one RPC when
// the packet fills, on Sync, or on Close. Without this, every small WAL
// append would pay a full network round trip — which no real DFS client does.
const writePacketSize = 64 << 10

// Create implements vfs.FS.
func (c *Client) Create(name string) (vfs.WritableFile, error) {
	resp, err := c.roundTrip(&Request{Op: OpCreate, Name: name})
	if err != nil {
		return nil, err
	}
	return &remoteWritable{c: c, handle: resp.Handle}, nil
}

// Open implements vfs.FS.
func (c *Client) Open(name string) (vfs.RandomAccessFile, error) {
	resp, err := c.roundTrip(&Request{Op: OpOpen, Name: name})
	if err != nil {
		return nil, err
	}
	return &remoteRandom{c: c, handle: resp.Handle, size: resp.Size}, nil
}

// OpenSequential implements vfs.FS via positional reads.
func (c *Client) OpenSequential(name string) (vfs.SequentialFile, error) {
	r, err := c.Open(name)
	if err != nil {
		return nil, err
	}
	return &remoteSequential{r: r}, nil
}

// Remove implements vfs.FS.
func (c *Client) Remove(name string) error {
	_, err := c.roundTrip(&Request{Op: OpRemove, Name: name})
	return err
}

// Rename implements vfs.FS.
func (c *Client) Rename(oldname, newname string) error {
	_, err := c.roundTrip(&Request{Op: OpRename, Name: oldname, Name2: newname})
	return err
}

// List implements vfs.FS.
func (c *Client) List(dir string) ([]vfs.FileInfo, error) {
	resp, err := c.roundTrip(&Request{Op: OpList, Name: dir})
	if err != nil {
		return nil, err
	}
	return resp.Infos, nil
}

// MkdirAll implements vfs.FS.
func (c *Client) MkdirAll(dir string) error {
	_, err := c.roundTrip(&Request{Op: OpMkdir, Name: dir})
	return err
}

// SyncDir implements vfs.FS. The operation is idempotent, so roundTrip's
// retry-on-reconnect is safe.
func (c *Client) SyncDir(dir string) error {
	_, err := c.roundTrip(&Request{Op: OpSyncDir, Name: dir})
	return err
}

// Digest asks the storage node for the tag-chain digest of the sealed
// (format-v2) file name, skipping headerLen bytes of plaintext header. The
// node computes SHA-256 over the per-block AEAD tags locally — no DEK, no
// body transfer — so a compute-side audit of a remote SST costs one RPC
// instead of a full file read. The caller compares the digest against the
// manifest's anchored value.
func (c *Client) Digest(name string, headerLen int64) ([]byte, error) {
	resp, err := c.roundTrip(&Request{Op: OpDigest, Name: name, Off: headerLen})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// Sum returns the storage node's SHA-256 of the whole named file plus its
// size. Replica re-sync uses it as the diff predicate: two replicas whose
// (size, sum) agree hold byte-identical copies, so only divergent files are
// shipped during a rejoin.
func (c *Client) Sum(name string) ([]byte, int64, error) {
	resp, err := c.roundTrip(&Request{Op: OpSum, Name: name})
	if err != nil {
		return nil, 0, err
	}
	return resp.Data, resp.Size, nil
}

// Addr returns the storage node address this client dials.
func (c *Client) Addr() string { return c.addr }

// Stat implements vfs.FS.
func (c *Client) Stat(name string) (vfs.FileInfo, error) {
	resp, err := c.roundTrip(&Request{Op: OpStat, Name: name})
	if err != nil {
		return vfs.FileInfo{}, err
	}
	if len(resp.Infos) != 1 {
		return vfs.FileInfo{}, fmt.Errorf("dstore: stat returned %d infos", len(resp.Infos))
	}
	return resp.Infos[0], nil
}

type remoteWritable struct {
	c      *Client
	handle uint64
	buf    []byte
	seq    uint64 // last packet sequence number shipped for this handle
}

func (w *remoteWritable) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	if len(w.buf) >= writePacketSize {
		if err := w.flush(); err != nil {
			// The bytes were accepted into the local packet buffer (and
			// stay there for a later flush); report them as written per
			// the io.Writer contract so caller offsets stay consistent.
			return len(p), err
		}
	}
	return len(p), nil
}

func (w *remoteWritable) flush() error {
	for len(w.buf) > 0 {
		packet := w.buf
		if len(packet) > writePacketSize {
			packet = packet[:writePacketSize]
		}
		// Sequence numbers make the append idempotent: if this packet is
		// retried because the response was lost, the server recognizes
		// the duplicate and replays the response instead of re-appending.
		resp, err := w.c.roundTrip(&Request{Op: OpWrite, Handle: w.handle, Data: packet, Seq: w.seq + 1})
		if err != nil {
			return err
		}
		w.seq++
		if resp.N != len(packet) {
			return fmt.Errorf("dstore: short remote write (%d of %d)", resp.N, len(packet))
		}
		w.buf = w.buf[len(packet):]
	}
	w.buf = w.buf[:0]
	return nil
}

func (w *remoteWritable) Sync() error {
	if err := w.flush(); err != nil {
		return err
	}
	_, err := w.c.roundTrip(&Request{Op: OpSync, Handle: w.handle})
	return err
}

func (w *remoteWritable) Close() error {
	if err := w.flush(); err != nil {
		return err
	}
	_, err := w.c.roundTrip(&Request{Op: OpCloseW, Handle: w.handle})
	return err
}

type remoteRandom struct {
	c      *Client
	handle uint64
	size   int64
}

func (r *remoteRandom) ReadAt(p []byte, off int64) (int, error) {
	resp, err := r.c.roundTrip(&Request{Op: OpReadAt, Handle: r.handle, Off: off, Len: len(p)})
	if err != nil {
		return 0, err
	}
	n := copy(p, resp.Data)
	// Only report EOF when the server did; a short response mid-file is a
	// transfer anomaly, not end-of-file.
	if resp.EOF {
		return n, io.EOF
	}
	if n < len(p) {
		return n, io.ErrUnexpectedEOF
	}
	return n, nil
}

func (r *remoteRandom) Size() (int64, error) { return r.size, nil }

func (r *remoteRandom) Close() error {
	_, err := r.c.roundTrip(&Request{Op: OpCloseR, Handle: r.handle})
	return err
}

type remoteSequential struct {
	r   vfs.RandomAccessFile
	off int64
}

func (s *remoteSequential) Read(p []byte) (int, error) {
	n, err := s.r.ReadAt(p, s.off)
	s.off += int64(n)
	if n > 0 && err == io.EOF {
		return n, nil
	}
	return n, err
}

func (s *remoteSequential) Close() error { return s.r.Close() }
