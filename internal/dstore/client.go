package dstore

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"

	"shield/internal/vfs"
)

// Client is a vfs.FS backed by a remote storage node. It is safe for
// concurrent use; requests multiplex over a small connection pool so
// compaction traffic does not head-of-line-block foreground reads.
type Client struct {
	addr   string
	pool   chan *clientConn
	mu     sync.Mutex
	conns  []*clientConn
	closed bool
}

type clientConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a storage node with a pool of nConns connections
// (minimum 1).
func Dial(addr string, nConns int) (*Client, error) {
	if nConns < 1 {
		nConns = 1
	}
	c := &Client{addr: addr, pool: make(chan *clientConn, nConns)}
	for i := 0; i < nConns; i++ {
		cc, err := c.dial()
		if err != nil {
			c.Close()
			return nil, err
		}
		c.conns = append(c.conns, cc)
		c.pool <- cc
	}
	return c, nil
}

func (c *Client) dial() (*clientConn, error) {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("dstore: dial %s: %w", c.addr, err)
	}
	return &clientConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Close releases all connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	for _, cc := range c.conns {
		cc.conn.Close()
	}
	return nil
}

// roundTrip sends one request on a pooled connection.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	cc := <-c.pool
	defer func() { c.pool <- cc }()
	if err := cc.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("dstore: send: %w", err)
	}
	var resp Response
	if err := cc.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("dstore: recv: %w", err)
	}
	if resp.Err != "" {
		return &resp, mapRemoteError(resp.Err)
	}
	return &resp, nil
}

// mapRemoteError restores vfs sentinel errors across the wire.
func mapRemoteError(msg string) error {
	switch {
	case strings.Contains(msg, vfs.ErrNotFound.Error()):
		return fmt.Errorf("%w (remote: %s)", vfs.ErrNotFound, msg)
	case strings.Contains(msg, vfs.ErrExist.Error()):
		return fmt.Errorf("%w (remote: %s)", vfs.ErrExist, msg)
	default:
		return errors.New(msg)
	}
}

// writePacketSize is the client-side write-aggregation buffer, modeling the
// packet streaming of distributed-filesystem clients (HDFS's DFSOutputStream
// sends 64 KiB packets): appends accumulate locally and ship in one RPC when
// the packet fills, on Sync, or on Close. Without this, every small WAL
// append would pay a full network round trip — which no real DFS client does.
const writePacketSize = 64 << 10

// Create implements vfs.FS.
func (c *Client) Create(name string) (vfs.WritableFile, error) {
	resp, err := c.roundTrip(&Request{Op: OpCreate, Name: name})
	if err != nil {
		return nil, err
	}
	return &remoteWritable{c: c, handle: resp.Handle}, nil
}

// Open implements vfs.FS.
func (c *Client) Open(name string) (vfs.RandomAccessFile, error) {
	resp, err := c.roundTrip(&Request{Op: OpOpen, Name: name})
	if err != nil {
		return nil, err
	}
	return &remoteRandom{c: c, handle: resp.Handle, size: resp.Size}, nil
}

// OpenSequential implements vfs.FS via positional reads.
func (c *Client) OpenSequential(name string) (vfs.SequentialFile, error) {
	r, err := c.Open(name)
	if err != nil {
		return nil, err
	}
	return &remoteSequential{r: r}, nil
}

// Remove implements vfs.FS.
func (c *Client) Remove(name string) error {
	_, err := c.roundTrip(&Request{Op: OpRemove, Name: name})
	return err
}

// Rename implements vfs.FS.
func (c *Client) Rename(oldname, newname string) error {
	_, err := c.roundTrip(&Request{Op: OpRename, Name: oldname, Name2: newname})
	return err
}

// List implements vfs.FS.
func (c *Client) List(dir string) ([]vfs.FileInfo, error) {
	resp, err := c.roundTrip(&Request{Op: OpList, Name: dir})
	if err != nil {
		return nil, err
	}
	return resp.Infos, nil
}

// MkdirAll implements vfs.FS.
func (c *Client) MkdirAll(dir string) error {
	_, err := c.roundTrip(&Request{Op: OpMkdir, Name: dir})
	return err
}

// Stat implements vfs.FS.
func (c *Client) Stat(name string) (vfs.FileInfo, error) {
	resp, err := c.roundTrip(&Request{Op: OpStat, Name: name})
	if err != nil {
		return vfs.FileInfo{}, err
	}
	if len(resp.Infos) != 1 {
		return vfs.FileInfo{}, fmt.Errorf("dstore: stat returned %d infos", len(resp.Infos))
	}
	return resp.Infos[0], nil
}

type remoteWritable struct {
	c      *Client
	handle uint64
	buf    []byte
}

func (w *remoteWritable) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	if len(w.buf) >= writePacketSize {
		if err := w.flush(); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

func (w *remoteWritable) flush() error {
	for len(w.buf) > 0 {
		packet := w.buf
		if len(packet) > writePacketSize {
			packet = packet[:writePacketSize]
		}
		resp, err := w.c.roundTrip(&Request{Op: OpWrite, Handle: w.handle, Data: packet})
		if err != nil {
			return err
		}
		if resp.N != len(packet) {
			return fmt.Errorf("dstore: short remote write (%d of %d)", resp.N, len(packet))
		}
		w.buf = w.buf[len(packet):]
	}
	w.buf = w.buf[:0]
	return nil
}

func (w *remoteWritable) Sync() error {
	if err := w.flush(); err != nil {
		return err
	}
	_, err := w.c.roundTrip(&Request{Op: OpSync, Handle: w.handle})
	return err
}

func (w *remoteWritable) Close() error {
	if err := w.flush(); err != nil {
		return err
	}
	_, err := w.c.roundTrip(&Request{Op: OpCloseW, Handle: w.handle})
	return err
}

type remoteRandom struct {
	c      *Client
	handle uint64
	size   int64
}

func (r *remoteRandom) ReadAt(p []byte, off int64) (int, error) {
	resp, err := r.c.roundTrip(&Request{Op: OpReadAt, Handle: r.handle, Off: off, Len: len(p)})
	if err != nil {
		return 0, err
	}
	n := copy(p, resp.Data)
	if resp.EOF || n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (r *remoteRandom) Size() (int64, error) { return r.size, nil }

func (r *remoteRandom) Close() error {
	_, err := r.c.roundTrip(&Request{Op: OpCloseR, Handle: r.handle})
	return err
}

type remoteSequential struct {
	r   vfs.RandomAccessFile
	off int64
}

func (s *remoteSequential) Read(p []byte) (int, error) {
	n, err := s.r.ReadAt(p, s.off)
	s.off += int64(n)
	if n > 0 && err == io.EOF {
		return n, nil
	}
	return n, err
}

func (s *remoteSequential) Close() error { return s.r.Close() }
