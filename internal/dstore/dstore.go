// Package dstore implements the disaggregated-storage substrate: a TCP
// remote-file service (the stand-in for the paper's HDFS deployment on a
// second server) plus a client that satisfies vfs.FS so the LSM engine can
// run unmodified against remote storage.
//
// The server emulates the network between compute and storage servers with
// a configurable per-operation latency and a bandwidth cap (the paper's
// testbed is a 1 Gbps switch), and accounts I/O per operation class so the
// Table 3 experiment (read/write distribution by server) can be
// regenerated.
package dstore

import (
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"shield/internal/crypt"
	"shield/internal/vfs"
)

// Op identifies one remote filesystem operation.
type Op uint8

// Remote operations.
const (
	OpCreate Op = iota + 1
	OpWrite
	OpSync
	OpCloseW
	OpOpen
	OpReadAt
	OpCloseR
	OpRemove
	OpRename
	OpList
	OpMkdir
	OpStat
	OpSyncDir
	OpDigest
	OpSum
)

// Request is the wire request. A single struct keeps gob simple.
type Request struct {
	Op     Op
	Name   string
	Name2  string
	Handle uint64
	Off    int64
	Len    int
	Data   []byte

	// Seq is a per-write-handle packet sequence number (1, 2, ...) that
	// makes OpWrite idempotent: if the client retries a packet because the
	// response was lost in transit, the server recognizes the repeated Seq
	// and replays the recorded response instead of appending the data
	// twice. 0 means "no dedup" (legacy / non-write ops).
	Seq uint64
}

// Response is the wire response.
type Response struct {
	Err    string
	Handle uint64
	N      int
	Size   int64
	Data   []byte
	Infos  []vfs.FileInfo
	EOF    bool
}

// Server serves a base filesystem over TCP.
type Server struct {
	base  vfs.FS
	stats *vfs.CountingFS
	ln    net.Listener

	latency     time.Duration
	bytesPerSec int64
	linkMu      sync.Mutex
	linkFree    time.Time

	mu      sync.Mutex
	writers map[uint64]*writerEntry
	readers map[uint64]vfs.RandomAccessFile
	nextID  uint64
	closed  bool
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
}

// writerEntry is a server-side open write handle plus the duplicate-
// detection state for idempotent appends: the last applied packet sequence
// number and its byte count, so a redelivered packet's response can be
// replayed without touching the file.
type writerEntry struct {
	mu      sync.Mutex // serializes writes per handle, Seq bookkeeping
	f       vfs.WritableFile
	lastSeq uint64
	lastN   int
}

// NewServer starts a storage node on addr serving base. latency and
// bytesPerSec emulate the network link (0 disables each).
func NewServer(base vfs.FS, addr string, latency time.Duration, bytesPerSec int64) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dstore: listen: %w", err)
	}
	s := &Server{
		base:        base,
		stats:       vfs.NewCounting(base),
		ln:          ln,
		latency:     latency,
		bytesPerSec: bytesPerSec,
		writers:     make(map[uint64]*writerEntry),
		readers:     make(map[uint64]vfs.RandomAccessFile),
		conns:       make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats exposes the server-side I/O counters.
func (s *Server) Stats() vfs.Snapshot { return s.stats.Stats.Snapshot() }

// LocalFS returns the server's accounting filesystem — what a co-located
// service (e.g. the offloaded-compaction worker) uses to reach the same
// files without crossing the network.
func (s *Server) LocalFS() vfs.FS { return s.stats }

// SetNetwork adjusts the emulated link at runtime.
func (s *Server) SetNetwork(latency time.Duration, bytesPerSec int64) {
	s.linkMu.Lock()
	s.latency = latency
	s.bytesPerSec = bytesPerSec
	s.linkMu.Unlock()
}

// charge models the link: fixed round-trip latency plus serialization time
// of n bytes on a shared link.
func (s *Server) charge(n int) {
	s.linkMu.Lock()
	wait := s.latency
	if s.bytesPerSec > 0 && n > 0 {
		xfer := time.Duration(int64(n) * int64(time.Second) / s.bytesPerSec)
		now := time.Now()
		start := s.linkFree
		if start.Before(now) {
			start = now
		}
		s.linkFree = start.Add(xfer)
		wait += s.linkFree.Sub(now)
	}
	s.linkMu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}

// Close stops the server and releases all handles.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	for _, w := range s.writers {
		w.f.Close()
	}
	for _, r := range s.readers {
		r.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.handle(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req *Request) *Response {
	switch req.Op {
	case OpWrite, OpReadAt:
		n := len(req.Data)
		if req.Op == OpReadAt {
			n = req.Len
		}
		s.charge(n)
	default:
		s.charge(0)
	}

	resp := &Response{}
	fail := func(err error) *Response {
		resp.Err = err.Error()
		return resp
	}
	switch req.Op {
	case OpCreate:
		f, err := s.stats.Create(req.Name)
		if err != nil {
			return fail(err)
		}
		s.mu.Lock()
		s.nextID++
		id := s.nextID
		s.writers[id] = &writerEntry{f: f}
		s.mu.Unlock()
		resp.Handle = id
	case OpWrite:
		s.mu.Lock()
		w, ok := s.writers[req.Handle]
		s.mu.Unlock()
		if !ok {
			return fail(fmt.Errorf("dstore: unknown write handle %d", req.Handle))
		}
		w.mu.Lock()
		if req.Seq != 0 && req.Seq == w.lastSeq {
			// Duplicate delivery of the last packet (client retried after a
			// lost response): replay the recorded result, do not re-append.
			resp.N = w.lastN
			w.mu.Unlock()
			break
		}
		n, err := w.f.Write(req.Data)
		if err == nil && req.Seq != 0 {
			w.lastSeq, w.lastN = req.Seq, n
		}
		w.mu.Unlock()
		resp.N = n
		if err != nil {
			return fail(err)
		}
	case OpSync:
		s.mu.Lock()
		w, ok := s.writers[req.Handle]
		s.mu.Unlock()
		if !ok {
			return fail(fmt.Errorf("dstore: unknown write handle %d", req.Handle))
		}
		if err := w.f.Sync(); err != nil {
			return fail(err)
		}
	case OpCloseW:
		s.mu.Lock()
		w, ok := s.writers[req.Handle]
		delete(s.writers, req.Handle)
		s.mu.Unlock()
		if ok {
			if err := w.f.Close(); err != nil {
				return fail(err)
			}
		}
	case OpOpen:
		f, err := s.stats.Open(req.Name)
		if err != nil {
			return fail(err)
		}
		size, err := f.Size()
		if err != nil {
			f.Close()
			return fail(err)
		}
		s.mu.Lock()
		s.nextID++
		id := s.nextID
		s.readers[id] = f
		s.mu.Unlock()
		resp.Handle = id
		resp.Size = size
	case OpReadAt:
		s.mu.Lock()
		f, ok := s.readers[req.Handle]
		s.mu.Unlock()
		if !ok {
			return fail(fmt.Errorf("dstore: unknown read handle %d", req.Handle))
		}
		buf := make([]byte, req.Len)
		n, err := f.ReadAt(buf, req.Off)
		resp.Data = buf[:n]
		resp.N = n
		if err != nil {
			if errors.Is(err, io.EOF) {
				resp.EOF = true
			} else {
				return fail(err)
			}
		}
	case OpCloseR:
		s.mu.Lock()
		f, ok := s.readers[req.Handle]
		delete(s.readers, req.Handle)
		s.mu.Unlock()
		if ok {
			f.Close()
		}
	case OpRemove:
		if err := s.stats.Remove(req.Name); err != nil {
			return fail(err)
		}
	case OpRename:
		if err := s.stats.Rename(req.Name, req.Name2); err != nil {
			return fail(err)
		}
	case OpList:
		infos, err := s.stats.List(req.Name)
		if err != nil {
			return fail(err)
		}
		resp.Infos = infos
	case OpMkdir:
		if err := s.stats.MkdirAll(req.Name); err != nil {
			return fail(err)
		}
	case OpStat:
		info, err := s.stats.Stat(req.Name)
		if err != nil {
			return fail(err)
		}
		resp.Infos = []vfs.FileInfo{info}
	case OpSyncDir:
		if err := s.stats.SyncDir(req.Name); err != nil {
			return fail(err)
		}
	case OpDigest:
		// Compute a sealed file's tag-chain digest node-side. The digest is
		// keyless — SHA-256 over the per-block AEAD tags at fixed offsets —
		// so the storage node can answer an integrity audit without holding
		// any DEK, and without shipping the file body over the link. Off is
		// the plaintext header length (the client parses the header; the
		// node stays format-agnostic beyond the block layout).
		data, err := vfs.ReadFile(s.stats, req.Name)
		if err != nil {
			return fail(err)
		}
		if req.Off < 0 || req.Off > int64(len(data)) {
			return fail(fmt.Errorf("dstore: digest offset %d outside file of %d bytes", req.Off, len(data)))
		}
		d, err := crypt.TagChainDigest(data[req.Off:])
		if err != nil {
			return fail(err)
		}
		resp.Data = d
		resp.N = len(data) - int(req.Off)
	case OpSum:
		// Content fingerprint for replica re-sync: SHA-256 of the whole file
		// plus its size, computed node-side so the diff pass that decides
		// what a rejoining replica is missing costs one small RPC per file
		// instead of shipping every body across the link.
		data, err := vfs.ReadFile(s.stats, req.Name)
		if err != nil {
			return fail(err)
		}
		sum := sha256.Sum256(data)
		resp.Data = sum[:]
		resp.Size = int64(len(data))
	default:
		return fail(fmt.Errorf("dstore: unknown op %d", req.Op))
	}
	return resp
}
