package bench

// Network benchmark: drives a running shield-server over RESP with N
// concurrent pipelined client connections, so serving-layer throughput and
// latency (parse + shard routing + group commit + reply) land in the same
// harness as the engine-level workloads. Used standalone against a live
// server (shield-bench -net) and by the regression profile, which boots an
// in-process server so the report also captures the group-commit ratio.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"shield/internal/metrics"
	"shield/internal/resp"
)

// NetWorkload parameterizes one network benchmark run.
type NetWorkload struct {
	// Name labels the run in reports; defaults to "net-mixed".
	Name string

	// Addr is the shield-server address to drive. Required.
	Addr string

	// Clients is the number of concurrent connections. Default 8.
	Clients int

	// Pipeline is the number of commands sent per round trip. Default 16.
	Pipeline int

	// NumOps is the total command count across all clients. Default 10000.
	NumOps int

	// KeyCount, KeySize, ValueSize, ReadPct, Seed mirror Workload.
	KeyCount  uint64
	KeySize   int
	ValueSize int
	ReadPct   int // percentage of GETs in the mix (0–100)
	Seed      int64
}

func (w NetWorkload) withDefaults() NetWorkload {
	if w.Name == "" {
		w.Name = "net-mixed"
	}
	if w.Clients <= 0 {
		w.Clients = 8
	}
	if w.Pipeline <= 0 {
		w.Pipeline = 16
	}
	if w.NumOps <= 0 {
		w.NumOps = 10000
	}
	if w.KeyCount == 0 {
		w.KeyCount = uint64(w.NumOps)
	}
	if w.KeySize == 0 {
		w.KeySize = 16
	}
	if w.ValueSize == 0 {
		w.ValueSize = 100
	}
	if w.Seed == 0 {
		w.Seed = 42
	}
	return w
}

// NetResult is the output of one network run. P50/P99 are per-command
// latencies: each pipelined batch's round-trip time divided by the commands
// it carried, so numbers are comparable across pipeline depths.
type NetResult struct {
	Name      string
	Clients   int
	Pipeline  int
	Ops       int64
	Sets      int64
	Gets      int64
	Elapsed   time.Duration
	OpsPerSec float64
	P50       time.Duration
	P99       time.Duration
	Errors    int64 // -ERR replies plus transport failures
}

// String renders one report row.
func (r NetResult) String() string {
	return fmt.Sprintf("%-28s %10d ops %12.0f ops/sec  p50=%-10v p99=%-10v clients=%d pipeline=%d errors=%d",
		r.Name, r.Ops, r.OpsPerSec, r.P50, r.P99, r.Clients, r.Pipeline, r.Errors)
}

// RunNet drives the server at w.Addr with w.Clients concurrent pipelined
// connections issuing a ReadPct/100 GET / SET mix over a shared key space.
// It returns an error only when a connection cannot be established; per-op
// failures are counted in NetResult.Errors.
func RunNet(w NetWorkload) (NetResult, error) {
	w = w.withDefaults()
	if w.Addr == "" {
		return NetResult{}, fmt.Errorf("bench: NetWorkload.Addr is required")
	}

	// Fail fast if the server is unreachable, before spawning the fleet.
	probe, err := resp.Dial(w.Addr, 5*time.Second)
	if err != nil {
		return NetResult{}, fmt.Errorf("bench: %w", err)
	}
	if v, err := probe.Do("PING"); err != nil {
		probe.Close() //nolint:errcheck
		return NetResult{}, fmt.Errorf("bench: PING %s: %w", w.Addr, err)
	} else if v.IsError() {
		probe.Close() //nolint:errcheck
		return NetResult{}, fmt.Errorf("bench: PING %s rejected: %s", w.Addr, v.Str)
	}
	probe.Close() //nolint:errcheck

	kg := NewKeyGen(w.KeySize)
	vg := NewValueGen(w.ValueSize, w.Seed)
	hist := &metrics.Histogram{}
	var histMu sync.Mutex
	var sets, gets, errs atomic.Int64
	var next atomic.Uint64
	var wg sync.WaitGroup

	start := time.Now()
	for c := 0; c < w.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := resp.Dial(w.Addr, 10*time.Second)
			if err != nil {
				errs.Add(1)
				return
			}
			defer cl.Close() //nolint:errcheck
			rng := rand.New(rand.NewSource(w.Seed + int64(c)*7919))
			local := &metrics.Histogram{}
			for {
				// Claim the next batch of command indexes.
				lo := next.Add(uint64(w.Pipeline)) - uint64(w.Pipeline)
				if lo >= uint64(w.NumOps) {
					break
				}
				n := w.Pipeline
				if rem := int(uint64(w.NumOps) - lo); rem < n {
					n = rem
				}
				nGet, err := sendBatch(cl, kg, vg, rng, w, n)
				if err != nil {
					errs.Add(1)
					return
				}
				batchStart := time.Now()
				if err := cl.Flush(); err != nil {
					errs.Add(1)
					return
				}
				for i := 0; i < n; i++ {
					v, err := cl.Recv()
					if err != nil {
						errs.Add(1)
						return
					}
					if v.IsError() {
						errs.Add(1)
					}
				}
				perOp := time.Since(batchStart) / time.Duration(n)
				for i := 0; i < n; i++ {
					local.Record(perOp)
				}
				gets.Add(int64(nGet))
				sets.Add(int64(n - nGet))
			}
			histMu.Lock()
			hist.Merge(local)
			histMu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	return NetResult{
		Name:      w.Name,
		Clients:   w.Clients,
		Pipeline:  w.Pipeline,
		Ops:       hist.Count(),
		Sets:      sets.Load(),
		Gets:      gets.Load(),
		Elapsed:   elapsed,
		OpsPerSec: float64(hist.Count()) / elapsed.Seconds(),
		P50:       hist.Quantile(0.50),
		P99:       hist.Quantile(0.99),
		Errors:    errs.Load(),
	}, nil
}

// sendBatch queues n commands on cl (unflushed) and reports how many were
// GETs.
func sendBatch(cl *resp.Client, kg *KeyGen, vg *ValueGen, rng *rand.Rand, w NetWorkload, n int) (int, error) {
	nGet := 0
	for i := 0; i < n; i++ {
		k := rng.Uint64() % w.KeyCount
		if rng.Intn(100) < w.ReadPct {
			nGet++
			if err := cl.Send([]byte("GET"), kg.Key(k)); err != nil {
				return nGet, err
			}
		} else {
			if err := cl.Send([]byte("SET"), kg.Key(k), vg.Value(k)); err != nil {
				return nGet, err
			}
		}
	}
	return nGet, nil
}
