package bench

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"

	"shield/internal/metrics"
)

// TestRegressionProfileSmoke runs the BENCH_5 profile at a tiny scale and
// checks the report's shape: both configurations, all three workloads, the
// headline speedup computed, and the JSON round-trips. Throughput ratios
// are not asserted — at smoke scale on shared CI hardware they are noise;
// the full-scale run (make bench-json) is where the speedup is read.
func TestRegressionProfileSmoke(t *testing.T) {
	jobsBefore := metrics.Jobs.Snapshot()
	report, err := RunRegression(0.05, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// The profile must exercise the scheduler end to end, even if at smoke
	// scale the background jobs land outside the timed workload windows.
	jobs := metrics.Jobs.Snapshot().Sub(jobsBefore)
	if jobs.CompactionsStarted == 0 || jobs.SubcompactionsStarted == 0 {
		t.Errorf("profile scheduled no parallel work: %s", jobs)
	}
	if len(report.Configs) != 2 {
		t.Fatalf("got %d configs, want 2", len(report.Configs))
	}
	wantWorkloads := []string{"fillrandom", "readrandom", "overwrite"}
	for _, cr := range report.Configs {
		if len(cr.Workloads) != len(wantWorkloads) {
			t.Fatalf("config %s: got %d workloads, want %d",
				cr.Config.Name, len(cr.Workloads), len(wantWorkloads))
		}
		for i, w := range cr.Workloads {
			if w.Name != wantWorkloads[i] {
				t.Errorf("config %s workload %d = %q, want %q", cr.Config.Name, i, w.Name, wantWorkloads[i])
			}
			if w.Ops == 0 || w.OpsPerSec <= 0 {
				t.Errorf("config %s %s: empty result %+v", cr.Config.Name, w.Name, w)
			}
			if w.Errors != 0 {
				t.Errorf("config %s %s: %d op errors", cr.Config.Name, w.Name, w.Errors)
			}
		}
	}
	// The parallel configuration must actually have scheduled parallel work.
	par := report.Configs[1]
	if par.Config.MaxBackgroundJobs != 4 || par.Config.MaxSubcompactions != 4 {
		t.Fatalf("parallel config = %+v", par.Config)
	}
	if report.ParallelSpeedupFillRandom <= 0 {
		t.Errorf("speedup not computed: %v", report.ParallelSpeedupFillRandom)
	}

	// The serving-layer section: clients actually pushed ops through the
	// in-process server, nothing errored, and group commit kept the fsync
	// count below the acknowledged SET count.
	srv := report.Server
	if srv == nil {
		t.Fatal("report has no server section")
	}
	if srv.Ops == 0 || srv.OpsPerSec <= 0 || srv.Sets == 0 || srv.Gets == 0 {
		t.Errorf("server section empty: %+v", srv)
	}
	if srv.Errors != 0 {
		t.Errorf("server section: %d errors", srv.Errors)
	}
	if srv.WALSyncs == 0 || srv.WALSyncs >= srv.Sets {
		t.Errorf("group commit not observed: wal_syncs=%d sets=%d", srv.WALSyncs, srv.Sets)
	}

	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back RegressReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Schema != report.Schema || len(back.Configs) != len(report.Configs) {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}
