package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"shield/internal/lsm"
	"shield/internal/metrics"
)

// ReadWhileWriting measures read throughput while one background writer
// continuously ingests, db_bench's readwhilewriting: w.Threads reader
// goroutines run NumOps reads total against a preloaded key space while a
// dedicated writer loops until the readers finish.
func ReadWhileWriting(db DB, w Workload) Result {
	w = w.withDefaults()
	if w.Name == "" {
		w.Name = "readwhilewriting"
	}
	kg := NewKeyGen(w.KeySize)
	vg := NewValueGen(w.ValueSize, w.Seed)

	stop := make(chan struct{})
	var writerOps atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(w.Seed + 101))
		for {
			select {
			case <-stop:
				return
			default:
			}
			n := rng.Uint64() % w.KeyCount
			if err := db.Put(kg.Key(n), vg.Value(n)); err != nil {
				return
			}
			writerOps.Add(1)
		}
	}()

	res := run(w, func(t int, i uint64, rng *rand.Rand) error {
		n := rng.Uint64() % w.KeyCount
		_, err := db.Get(kg.Key(n))
		if err != nil && !errors.Is(err, lsm.ErrNotFound) {
			return err
		}
		return nil
	})
	close(stop)
	wg.Wait()
	res.Name = fmt.Sprintf("%s(bg-writes=%d)", res.Name, writerOps.Load())
	return res
}

// SeekRandom measures short range scans from random positions (db_bench
// seekrandom): each op seeks to a random key and iterates scanLen entries.
func SeekRandom(db DB, w Workload, scanLen int) Result {
	w = w.withDefaults()
	if w.Name == "" {
		w.Name = fmt.Sprintf("seekrandom-%d", scanLen)
	}
	if scanLen <= 0 {
		scanLen = 10
	}
	kg := NewKeyGen(w.KeySize)
	return run(w, func(t int, i uint64, rng *rand.Rand) error {
		it, err := db.NewIter()
		if err != nil {
			return err
		}
		defer it.Close()
		n := rng.Uint64() % w.KeyCount
		for ok, steps := it.SeekGE(kg.Key(n)), 0; ok && steps < scanLen; ok, steps = it.Next(), steps+1 {
		}
		return it.Err()
	})
}

// Overwrite repeatedly rewrites an existing key space (db_bench overwrite):
// unlike fillrandom on an empty store, every write shadows a live version,
// maximizing compaction's rewrite (and under SHIELD, re-encryption) volume.
func Overwrite(db DB, w Workload) Result {
	w = w.withDefaults()
	if w.Name == "" {
		w.Name = "overwrite"
	}
	kg := NewKeyGen(w.KeySize)
	vg := NewValueGen(w.ValueSize, w.Seed+1)
	return run(w, func(t int, i uint64, rng *rand.Rand) error {
		n := rng.Uint64() % w.KeyCount
		return db.Put(kg.Key(n), vg.Value(n))
	})
}

// Timed runs fn repeatedly for the given duration, reporting aggregate
// throughput — for experiments that fix wall time instead of op count.
func Timed(name string, d time.Duration, fn func() error) Result {
	hist := &metrics.Histogram{}
	start := time.Now()
	var errs int64
	for time.Since(start) < d {
		opStart := time.Now()
		if err := fn(); err != nil {
			errs++
		}
		hist.Record(time.Since(opStart))
	}
	elapsed := time.Since(start)
	return Result{
		Name:      name,
		Ops:       hist.Count(),
		Elapsed:   elapsed,
		OpsPerSec: float64(hist.Count()) / elapsed.Seconds(),
		Mean:      hist.Mean(),
		P50:       hist.Quantile(0.50),
		P99:       hist.Quantile(0.99),
		Errors:    errs,
	}
}
