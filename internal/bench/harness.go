package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"shield/internal/lsm"
	"shield/internal/metrics"
)

// DB is the slice of the engine API the harness drives.
type DB interface {
	Put(key, value []byte) error
	Delete(key []byte) error
	Get(key []byte) ([]byte, error)
	NewIter() (*lsm.Iterator, error)
	Flush() error
}

// Workload parameterizes one benchmark run, mirroring db_bench's knobs.
type Workload struct {
	// Name labels the run in reports.
	Name string

	// NumOps is the total operation count across all threads.
	NumOps int

	// KeyCount is the key-space size (existing keys for read workloads).
	KeyCount uint64

	// KeySize and ValueSize are the db_bench defaults (16 / 100 bytes)
	// when zero.
	KeySize   int
	ValueSize int

	// ReadPct is the read percentage for mixed workloads (0–100).
	ReadPct int

	// Threads is the number of client goroutines (db_bench's --threads).
	Threads int

	// Seed makes runs reproducible.
	Seed int64
}

func (w Workload) withDefaults() Workload {
	if w.KeySize == 0 {
		w.KeySize = 16
	}
	if w.ValueSize == 0 {
		w.ValueSize = 100
	}
	if w.Threads == 0 {
		w.Threads = 1
	}
	if w.Seed == 0 {
		w.Seed = 42
	}
	if w.KeyCount == 0 {
		w.KeyCount = uint64(w.NumOps)
	}
	return w
}

// Result is the harness output for one run.
type Result struct {
	Name      string
	Ops       int64
	Elapsed   time.Duration
	OpsPerSec float64
	Mean      time.Duration
	P50       time.Duration
	P99       time.Duration
	Errors    int64

	// Net is the delta of the process-wide network fault-tolerance
	// counters over this run: how much retrying, failover, and degraded
	// operation the workload needed.
	Net metrics.NetSnapshot

	// Recovery is the delta of the process-wide crash-recovery counters
	// over this run: WAL replay work, torn-tail truncations, quarantined
	// files, and scrub verification (non-zero when the workload reopens
	// databases).
	Recovery metrics.RecoverySnapshot

	// Jobs is the delta of the background-job scheduler counters over this
	// run: compactions claimed, peak concurrency, subcompaction shards,
	// compaction I/O volume, and write-stall time spent waiting on debt.
	Jobs metrics.JobsSnapshot

	// Engine is the delta of the process-wide foreground engine counters
	// over this run: committed writes vs commit-path WAL fsyncs (the
	// group-commit ratio), how often concurrent writers coalesced, and
	// prefix-bloom seek outcomes.
	Engine metrics.EngineSnapshot
}

// String renders one report row.
func (r Result) String() string {
	s := fmt.Sprintf("%-28s %10d ops %12.0f ops/sec  mean=%-10v p50=%-10v p99=%-10v",
		r.Name, r.Ops, r.OpsPerSec, r.Mean, r.P50, r.P99)
	if r.Net.Any() {
		s += "  [" + r.Net.String() + "]"
	}
	if r.Recovery.Any() {
		s += "  [" + r.Recovery.String() + "]"
	}
	if r.Jobs.Any() {
		s += "  [" + r.Jobs.String() + "]"
	}
	if r.Engine.Any() {
		s += "  [" + r.Engine.String() + "]"
	}
	return s
}

// opFunc performs one operation for index i on behalf of thread t.
type opFunc func(t int, i uint64, rng *rand.Rand) error

// run drives NumOps operations across w.Threads goroutines, timing each op.
func run(w Workload, fn opFunc) Result {
	w = w.withDefaults()
	hist := &metrics.Histogram{}
	var next atomic.Uint64
	var errs atomic.Int64
	var wg sync.WaitGroup

	netBefore := metrics.Net.Snapshot()
	recBefore := metrics.Recovery.Snapshot()
	jobsBefore := metrics.Jobs.Snapshot()
	engBefore := metrics.Engine.Snapshot()
	start := time.Now()
	for t := 0; t < w.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(w.Seed + int64(t)*7919))
			local := &metrics.Histogram{}
			for {
				i := next.Add(1) - 1
				if i >= uint64(w.NumOps) {
					break
				}
				opStart := time.Now()
				if err := fn(t, i, rng); err != nil {
					errs.Add(1)
				}
				local.Record(time.Since(opStart))
			}
			hist.Merge(local)
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)

	return Result{
		Name:      w.Name,
		Ops:       hist.Count(),
		Elapsed:   elapsed,
		OpsPerSec: float64(hist.Count()) / elapsed.Seconds(),
		Mean:      hist.Mean(),
		P50:       hist.Quantile(0.50),
		P99:       hist.Quantile(0.99),
		Errors:    errs.Load(),
		Net:       metrics.Net.Snapshot().Sub(netBefore),
		Recovery:  metrics.Recovery.Snapshot().Sub(recBefore),
		Jobs:      metrics.Jobs.Snapshot().Sub(jobsBefore),
		Engine:    metrics.Engine.Snapshot().Sub(engBefore),
	}
}

// FillRandom writes NumOps random keys (db_bench fillrandom).
func FillRandom(db DB, w Workload) Result {
	w = w.withDefaults()
	if w.Name == "" {
		w.Name = "fillrandom"
	}
	kg := NewKeyGen(w.KeySize)
	vg := NewValueGen(w.ValueSize, w.Seed)
	return run(w, func(t int, i uint64, rng *rand.Rand) error {
		n := rng.Uint64() % w.KeyCount
		return db.Put(kg.Key(n), vg.Value(n))
	})
}

// FillSeq writes NumOps sequential keys (db_bench fillseq).
func FillSeq(db DB, w Workload) Result {
	w = w.withDefaults()
	if w.Name == "" {
		w.Name = "fillseq"
	}
	kg := NewKeyGen(w.KeySize)
	vg := NewValueGen(w.ValueSize, w.Seed)
	return run(w, func(t int, i uint64, rng *rand.Rand) error {
		return db.Put(kg.Key(i), vg.Value(i))
	})
}

// ReadRandom reads NumOps uniformly random existing keys (db_bench
// readrandom). Missing keys are not errors when the preload was random
// (collisions leave holes), so only unexpected failures count.
func ReadRandom(db DB, w Workload) Result {
	w = w.withDefaults()
	if w.Name == "" {
		w.Name = "readrandom"
	}
	kg := NewKeyGen(w.KeySize)
	return run(w, func(t int, i uint64, rng *rand.Rand) error {
		n := rng.Uint64() % w.KeyCount
		_, err := db.Get(kg.Key(n))
		if err != nil && !errors.Is(err, lsm.ErrNotFound) {
			return err
		}
		return nil
	})
}

// MixedRatio performs ReadPct% reads and the rest writes over the key space
// (db_bench readrandomwriterandom).
func MixedRatio(db DB, w Workload) Result {
	w = w.withDefaults()
	if w.Name == "" {
		w.Name = fmt.Sprintf("mixed-r%d", w.ReadPct)
	}
	kg := NewKeyGen(w.KeySize)
	vg := NewValueGen(w.ValueSize, w.Seed)
	return run(w, func(t int, i uint64, rng *rand.Rand) error {
		n := rng.Uint64() % w.KeyCount
		if rng.Intn(100) < w.ReadPct {
			_, err := db.Get(kg.Key(n))
			if err != nil && !errors.Is(err, lsm.ErrNotFound) {
				return err
			}
			return nil
		}
		return db.Put(kg.Key(n), vg.Value(n))
	})
}

// Preload fills the database with exactly KeyCount sequential keys and
// flushes, establishing the read set for read benchmarks.
func Preload(db DB, w Workload) error {
	w = w.withDefaults()
	kg := NewKeyGen(w.KeySize)
	vg := NewValueGen(w.ValueSize, w.Seed)
	for n := uint64(0); n < w.KeyCount; n++ {
		if err := db.Put(kg.Key(n), vg.Value(n)); err != nil {
			return err
		}
	}
	return db.Flush()
}

// Mixgraph approximates the paper's Mixgraph macro benchmark: zipfian key
// popularity, Pareto-distributed small values (mean ≈ 37 bytes), and a
// production-like op mix of ~80% Get, 15% Put, 5% short scans.
func Mixgraph(db DB, w Workload) Result {
	w = w.withDefaults()
	if w.Name == "" {
		w.Name = "mixgraph"
	}
	kg := NewKeyGen(w.KeySize)
	zipf := NewZipfian(w.KeyCount, w.Seed)
	sizes := NewPareto(16.0, 0.2, 10, 1024, w.Seed)
	vg := NewValueGen(2048, w.Seed)
	return run(w, func(t int, i uint64, rng *rand.Rand) error {
		n := zipf.ScrambledNext()
		switch r := rng.Intn(100); {
		case r < 80:
			_, err := db.Get(kg.Key(n))
			if err != nil && !errors.Is(err, lsm.ErrNotFound) {
				return err
			}
			return nil
		case r < 95:
			v := vg.Value(n)
			return db.Put(kg.Key(n), v[:sizes.Next()])
		default:
			it, err := db.NewIter()
			if err != nil {
				return err
			}
			defer it.Close()
			for ok, steps := it.SeekGE(kg.Key(n)), 0; ok && steps < 10; ok, steps = it.Next(), steps+1 {
			}
			return it.Err()
		}
	})
}
