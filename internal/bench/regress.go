package bench

// Benchmark-regression harness (BENCH_5.json): a short, deterministic A/B
// profile of the parallel compaction scheduler, run on the full SHIELD
// stack (per-file DEKs from an in-process KDS, chunked SST encryption,
// encrypted WAL) over an in-memory filesystem so the numbers isolate
// engine + crypto cost from device noise. The machine-readable report
// seeds the bench trajectory: every future PR reruns the same profile and
// diffs the JSON.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"shield/internal/core"
	"shield/internal/kds"
	"shield/internal/lsm"
	"shield/internal/server"
	"shield/internal/vfs"
)

// RegressConfig is one scheduler configuration in the A/B profile.
type RegressConfig struct {
	Name              string `json:"name"`
	MaxBackgroundJobs int    `json:"max_background_jobs"`
	MaxSubcompactions int    `json:"max_subcompactions"`
}

// regressConfigs is the fixed A/B pair: the serial default (one compaction
// job slot) against the parallel scheduler the tentpole added.
var regressConfigs = []RegressConfig{
	{Name: "single-job", MaxBackgroundJobs: 2, MaxSubcompactions: 1},
	{Name: "parallel", MaxBackgroundJobs: 4, MaxSubcompactions: 4},
}

// RegressWorkloadResult is one workload row in machine-readable form.
// Latencies are microseconds; stall is milliseconds.
type RegressWorkloadResult struct {
	Name                  string  `json:"name"`
	Ops                   int64   `json:"ops"`
	OpsPerSec             float64 `json:"ops_per_sec"`
	P50Micros             float64 `json:"p50_us"`
	P99Micros             float64 `json:"p99_us"`
	Errors                int64   `json:"errors"`
	Compactions           int64   `json:"compactions"`
	Subcompactions        int64   `json:"subcompactions"`
	MaxRunningJobs        int64   `json:"max_running_jobs"`
	SchedDeferred         int64   `json:"sched_deferred"`
	BytesCompactedRead    int64   `json:"bytes_compacted_read"`
	BytesCompactedWritten int64   `json:"bytes_compacted_written"`
	StallMillis           float64 `json:"stall_ms"`
}

// RegressConfigResult is all workload rows for one configuration.
type RegressConfigResult struct {
	Config    RegressConfig           `json:"config"`
	Workloads []RegressWorkloadResult `json:"workloads"`
}

// RegressServerResult is the serving-layer section of the report: an
// in-process shield-server over sharded SHIELD engines driven by concurrent
// pipelined RESP clients. Latencies are microseconds per command.
type RegressServerResult struct {
	Shards    int     `json:"shards"`
	Clients   int     `json:"clients"`
	Pipeline  int     `json:"pipeline"`
	Ops       int64   `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	Errors    int64   `json:"errors"`
	Sets      int64   `json:"sets"`
	Gets      int64   `json:"gets"`

	// WriteBatches is the coalesced per-shard engine batches the server
	// committed; WALSyncs the fsyncs those cost. GroupCommitRatio is
	// WALSyncs/Sets — how far below one fsync per acknowledged write the
	// two coalescing levels (pipeline folding, cross-connection group
	// commit) pushed the sync rate.
	WriteBatches     int64   `json:"write_batches"`
	WALSyncs         int64   `json:"wal_syncs"`
	GroupCommitRatio float64 `json:"group_commit_ratio"`
}

// RegressReport is the BENCH_5.json schema.
type RegressReport struct {
	Schema      string                `json:"schema"`
	GeneratedAt string                `json:"generated_at"`
	GoVersion   string                `json:"go_version"`
	NumCPU      int                   `json:"num_cpu"`
	Scale       float64               `json:"scale"`
	Configs     []RegressConfigResult `json:"configs"`

	// Server is the serving-layer profile (nil in reports predating it).
	Server *RegressServerResult `json:"server,omitempty"`

	// ParallelSpeedupFillRandom is fillrandom ops/s of the parallel
	// configuration over the single-job configuration, same process, same
	// workload — the headline number the scheduler PR is accountable for.
	ParallelSpeedupFillRandom float64 `json:"parallel_speedup_fillrandom"`
}

// WriteJSON writes the report, indented, to w.
func (r *RegressReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// regressRow converts a harness result plus engine metrics into a report
// row.
func regressRow(r Result) RegressWorkloadResult {
	return RegressWorkloadResult{
		Name:                  r.Name,
		Ops:                   r.Ops,
		OpsPerSec:             r.OpsPerSec,
		P50Micros:             float64(r.P50.Nanoseconds()) / 1e3,
		P99Micros:             float64(r.P99.Nanoseconds()) / 1e3,
		Errors:                r.Errors,
		Compactions:           r.Jobs.CompactionsStarted,
		Subcompactions:        r.Jobs.SubcompactionsStarted,
		MaxRunningJobs:        r.Jobs.MaxRunning,
		SchedDeferred:         r.Jobs.SchedDeferred,
		BytesCompactedRead:    r.Jobs.BytesRead,
		BytesCompactedWritten: r.Jobs.BytesWritten,
		StallMillis:           float64(r.Jobs.StallNanos) / 1e6,
	}
}

// regressReadLatency is the emulated device latency charged to every SST
// block read (vfs.NewReadLatency — the monolithic-SSD storage model the
// experiments use). It is what makes the profile meaningful on small or
// single-core CI machines: compaction becomes read-latency-bound, and the
// parallel scheduler wins by overlapping device waits across jobs and
// subcompaction shards rather than by burning more cores.
const regressReadLatency = 40 * time.Microsecond

// openRegressDB builds a fresh full-SHIELD deployment tuned so the scaled
// workload is compaction-bound: a small memtable flushes constantly, a low
// L0 stall threshold makes write throughput track compaction drain rate,
// and small target files give subcompactions multiple outputs per job.
func openRegressDB(cfg RegressConfig) (*lsm.DB, error) {
	return core.Open("db", core.Config{
		Mode:              core.ModeSHIELD,
		FS:                vfs.NewReadLatency(vfs.NewMem(), regressReadLatency),
		KDS:               kds.NewLocal(kds.NewStore(kds.Policy{MaxFetches: 1}), "bench-server"),
		WALBufferSize:     512,
		EncryptionThreads: 2,
	}, lsm.Options{
		MemtableSize:        256 << 10,
		L0CompactionTrigger: 2,
		L0StopWritesTrigger: 6,
		BaseLevelSize:       512 << 10,
		TargetFileSize:      128 << 10,
		MaxBackgroundJobs:   cfg.MaxBackgroundJobs,
		MaxSubcompactions:   cfg.MaxSubcompactions,
	})
}

// RunRegression executes the regression profile: for each scheduler
// configuration, fillrandom into an empty tree, readrandom over the
// resulting keys, then overwrite — identical workloads, seeds, and thread
// counts, so the only variable is the scheduler. Progress rows go to out
// (nil discards).
func RunRegression(scale float64, out io.Writer) (*RegressReport, error) {
	if scale <= 0 {
		scale = 1.0
	}
	if out == nil {
		out = io.Discard
	}
	ops := int(40000 * scale)
	if ops < 2000 {
		ops = 2000
	}

	report := &RegressReport{
		Schema:      "shield-bench-regress/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Scale:       scale,
	}

	fillRate := make(map[string]float64)
	for _, cfg := range regressConfigs {
		db, err := openRegressDB(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: open %s: %w", cfg.Name, err)
		}
		fmt.Fprintf(out, "-- %s (jobs=%d, subcompactions=%d)\n",
			cfg.Name, cfg.MaxBackgroundJobs, cfg.MaxSubcompactions)

		base := Workload{
			NumOps:    ops,
			KeyCount:  uint64(ops),
			ValueSize: 256,
			Threads:   4,
			Seed:      1789,
		}
		cr := RegressConfigResult{Config: cfg}
		run := func(r Result) {
			fmt.Fprintln(out, r)
			cr.Workloads = append(cr.Workloads, regressRow(r))
		}

		fill := FillRandom(db, base)
		run(fill)
		fillRate[cfg.Name] = fill.OpsPerSec
		if err := db.Flush(); err != nil {
			db.Close()
			return nil, fmt.Errorf("bench: flush %s: %w", cfg.Name, err)
		}
		// Drain the compaction debt fillrandom left behind so both
		// configurations start readrandom from the same quiescent tree.
		if err := db.CompactRange(); err != nil {
			db.Close()
			return nil, fmt.Errorf("bench: compact %s: %w", cfg.Name, err)
		}

		read := base
		read.Name = "readrandom"
		run(ReadRandom(db, read))

		over := base
		over.Name = "overwrite"
		over.Seed = 2297
		run(FillRandom(db, over))

		if err := db.Close(); err != nil {
			return nil, fmt.Errorf("bench: close %s: %w", cfg.Name, err)
		}
		report.Configs = append(report.Configs, cr)
	}

	if s, p := fillRate["single-job"], fillRate["parallel"]; s > 0 {
		report.ParallelSpeedupFillRandom = p / s
	}
	fmt.Fprintf(out, "-- parallel fillrandom speedup: %.2fx\n", report.ParallelSpeedupFillRandom)

	srv, err := runServerRegression(ops, out)
	if err != nil {
		return nil, err
	}
	report.Server = srv
	return report, nil
}

// runServerRegression boots an in-process shield-server over four full-SHIELD
// shards and drives it with concurrent pipelined RESP clients, recording
// serving throughput/latency and the group-commit ratio.
func runServerRegression(ops int, out io.Writer) (*RegressServerResult, error) {
	const (
		nShards  = 4
		nClients = 8
		pipeline = 16
	)
	var shards []server.Engine
	var dbs []*lsm.DB
	closeAll := func() {
		for _, db := range dbs {
			db.Close() //nolint:errcheck // bench teardown
		}
	}
	for i := 0; i < nShards; i++ {
		db, err := core.Open("db", core.Config{
			Mode:          core.ModeSHIELD,
			FS:            vfs.NewMem(),
			KDS:           kds.NewLocal(kds.NewStore(kds.Policy{MaxFetches: 1}), fmt.Sprintf("bench-server-%d", i)),
			WALBufferSize: 512,
		}, lsm.Options{
			MemtableSize: 1 << 20,
		})
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("bench: open server shard %d: %w", i, err)
		}
		dbs = append(dbs, db)
		shards = append(shards, db)
	}
	defer closeAll()

	srv, err := server.New(server.Config{Shards: shards})
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	defer func() {
		srv.Close() //nolint:errcheck // Close only returns nil
		<-serveErr
	}()

	fmt.Fprintf(out, "-- server (shards=%d, clients=%d, pipeline=%d)\n", nShards, nClients, pipeline)
	res, err := RunNet(NetWorkload{
		Name:     "server-mixed",
		Addr:     srv.Addr(),
		Clients:  nClients,
		Pipeline: pipeline,
		NumOps:   ops,
		ReadPct:  50,
		Seed:     1789,
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(out, res)

	sr := &RegressServerResult{
		Shards:    nShards,
		Clients:   res.Clients,
		Pipeline:  res.Pipeline,
		Ops:       res.Ops,
		OpsPerSec: res.OpsPerSec,
		P50Micros: float64(res.P50.Nanoseconds()) / 1e3,
		P99Micros: float64(res.P99.Nanoseconds()) / 1e3,
		Errors:    res.Errors,
		Sets:      res.Sets,
		Gets:      res.Gets,
	}
	for _, snap := range srv.Stats() {
		sr.WriteBatches += snap.WriteBatches
		sr.WALSyncs += snap.Engine.WALSyncs
	}
	if sr.Sets > 0 {
		sr.GroupCommitRatio = float64(sr.WALSyncs) / float64(sr.Sets)
	}
	fmt.Fprintf(out, "-- group commit: %d sets -> %d batches -> %d wal syncs (ratio %.3f)\n",
		sr.Sets, sr.WriteBatches, sr.WALSyncs, sr.GroupCommitRatio)
	return sr, nil
}
