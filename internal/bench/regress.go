package bench

// Benchmark-regression harness (BENCH_5.json): a short, deterministic A/B
// profile of the parallel compaction scheduler, run on the full SHIELD
// stack (per-file DEKs from an in-process KDS, chunked SST encryption,
// encrypted WAL) over an in-memory filesystem so the numbers isolate
// engine + crypto cost from device noise. The machine-readable report
// seeds the bench trajectory: every future PR reruns the same profile and
// diffs the JSON.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"shield/internal/core"
	"shield/internal/kds"
	"shield/internal/lsm"
	"shield/internal/server"
	"shield/internal/vfs"
)

// RegressConfig is one scheduler configuration in the A/B profile.
type RegressConfig struct {
	Name              string `json:"name"`
	MaxBackgroundJobs int    `json:"max_background_jobs"`
	MaxSubcompactions int    `json:"max_subcompactions"`
}

// regressConfigs is the fixed A/B pair: the serial default (one compaction
// job slot) against the parallel scheduler the tentpole added.
var regressConfigs = []RegressConfig{
	{Name: "single-job", MaxBackgroundJobs: 2, MaxSubcompactions: 1},
	{Name: "parallel", MaxBackgroundJobs: 4, MaxSubcompactions: 4},
}

// RegressWorkloadResult is one workload row in machine-readable form.
// Latencies are microseconds; stall is milliseconds.
type RegressWorkloadResult struct {
	Name                  string  `json:"name"`
	Ops                   int64   `json:"ops"`
	OpsPerSec             float64 `json:"ops_per_sec"`
	P50Micros             float64 `json:"p50_us"`
	P99Micros             float64 `json:"p99_us"`
	Errors                int64   `json:"errors"`
	Compactions           int64   `json:"compactions"`
	Subcompactions        int64   `json:"subcompactions"`
	MaxRunningJobs        int64   `json:"max_running_jobs"`
	SchedDeferred         int64   `json:"sched_deferred"`
	BytesCompactedRead    int64   `json:"bytes_compacted_read"`
	BytesCompactedWritten int64   `json:"bytes_compacted_written"`
	StallMillis           float64 `json:"stall_ms"`

	// Engine-level commit-pipeline counters for this workload: acked
	// writer batches, commit-path fsyncs they cost, and how many writers
	// rode coalesced groups. GroupCommitRatio is WALSyncs/Writes; under
	// concurrent synced writers it drops below 1.
	Writes           int64   `json:"writes,omitempty"`
	WALSyncs         int64   `json:"wal_syncs,omitempty"`
	GroupCommitRatio float64 `json:"group_commit_ratio,omitempty"`
	GroupedCommits   int64   `json:"grouped_commits,omitempty"`
	GroupedWriters   int64   `json:"grouped_writers,omitempty"`
	PrefixSeeks      int64   `json:"prefix_seeks,omitempty"`
	PrefixSkips      int64   `json:"prefix_skips,omitempty"`
}

// RegressConfigResult is all workload rows for one configuration.
type RegressConfigResult struct {
	Config    RegressConfig           `json:"config"`
	Workloads []RegressWorkloadResult `json:"workloads"`
}

// RegressServerResult is the serving-layer section of the report: an
// in-process shield-server over sharded SHIELD engines driven by concurrent
// pipelined RESP clients. Latencies are microseconds per command.
type RegressServerResult struct {
	Shards    int     `json:"shards"`
	Clients   int     `json:"clients"`
	Pipeline  int     `json:"pipeline"`
	Ops       int64   `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	Errors    int64   `json:"errors"`
	Sets      int64   `json:"sets"`
	Gets      int64   `json:"gets"`

	// WriteBatches is the coalesced per-shard engine batches the server
	// committed; WALSyncs the fsyncs those cost. GroupCommitRatio is
	// WALSyncs/Sets — how far below one fsync per acknowledged write the
	// two coalescing levels (pipeline folding, cross-connection group
	// commit) pushed the sync rate.
	WriteBatches     int64   `json:"write_batches"`
	WALSyncs         int64   `json:"wal_syncs"`
	GroupCommitRatio float64 `json:"group_commit_ratio"`
}

// RegressGroupCommitResult is the engine-level group-commit section: a
// concurrent fully-synced fillrandom whose writers must coalesce, pushing
// the fsync count below the acked-write count.
type RegressGroupCommitResult struct {
	Threads        int     `json:"threads"`
	Ops            int64   `json:"ops"`
	OpsPerSec      float64 `json:"ops_per_sec"`
	Writes         int64   `json:"writes"`
	WALSyncs       int64   `json:"wal_syncs"`
	GroupedCommits int64   `json:"grouped_commits"`
	GroupedWriters int64   `json:"grouped_writers"`

	// Ratio is WALSyncs/Writes — the headline the commit pipeline is
	// accountable for: strictly below 1 whenever writers coalesced.
	Ratio float64 `json:"group_commit_ratio"`
}

// RegressYCSBResult is the YCSB section for one read-path configuration:
// the A/B/C core mixes over the same preloaded, L0-resident record set,
// with the block cache far smaller than the working set. With PinL0AndMeta
// off the LRU thrashes and most reads pay the emulated device latency;
// with it on, L0 data and table metadata sit in the pinned class and reads
// are served from memory.
type RegressYCSBResult struct {
	PinL0AndMeta bool                    `json:"pin_l0_and_meta"`
	Records      int64                   `json:"records"`
	Workloads    []RegressWorkloadResult `json:"workloads"`

	// Block-cache state after the run (per-DB gauges, not process deltas).
	BlockCacheHits   int64 `json:"block_cache_hits"`
	BlockCacheMisses int64 `json:"block_cache_misses"`
	BlockCachePinned int64 `json:"block_cache_pinned_bytes"`
}

// RegressReport is the BENCH_5.json schema.
type RegressReport struct {
	Schema      string                `json:"schema"`
	GeneratedAt string                `json:"generated_at"`
	GoVersion   string                `json:"go_version"`
	NumCPU      int                   `json:"num_cpu"`
	Scale       float64               `json:"scale"`
	Configs     []RegressConfigResult `json:"configs"`

	// Server is the serving-layer profile (nil in reports predating it).
	Server *RegressServerResult `json:"server,omitempty"`

	// GroupCommit is the engine-level commit-pipeline profile (nil in
	// reports predating it).
	GroupCommit *RegressGroupCommitResult `json:"group_commit,omitempty"`

	// YCSB holds the A/B/C mixes with the pinned read path off vs on
	// (empty in reports predating it).
	YCSB []RegressYCSBResult `json:"ycsb,omitempty"`

	// ParallelSpeedupFillRandom is fillrandom ops/s of the parallel
	// configuration over the single-job configuration, same process, same
	// workload — the headline number the scheduler PR is accountable for.
	ParallelSpeedupFillRandom float64 `json:"parallel_speedup_fillrandom"`

	// YCSBCPinReadWin is YCSB-C read throughput with PinL0AndMeta on over
	// the same mix with it off — the read-path headline; above 1 means
	// pinning paid for itself.
	YCSBCPinReadWin float64 `json:"ycsb_c_pin_read_win,omitempty"`
}

// WriteJSON writes the report, indented, to w.
func (r *RegressReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadRegressReport parses a report previously written by WriteJSON. Older
// schema versions parse fine: fields they predate stay zero and the gate
// only checks what the baseline actually recorded.
func ReadRegressReport(r io.Reader) (*RegressReport, error) {
	var rep RegressReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("bench: parse baseline report: %w", err)
	}
	return &rep, nil
}

// CompareBaseline gates the current report against a prior one (the
// committed BENCH_5.json) and returns a list of human-readable failures,
// empty on pass. Absolute throughput is machine-dependent, so the gate
// checks self-relative ratios — numbers that compare a configuration
// against its sibling in the same process — plus the invariants the commit
// pipeline and pinned read path must hold regardless of baseline:
//
//   - parallel fillrandom speedup must not collapse below 75% of baseline
//   - the server group-commit ratio must not exceed the baseline ratio by
//     more than 25% (lower is better; small absolute slack for tiny runs)
//   - the engine group-commit ratio must be strictly below 1
//   - the YCSB-C pinned read win must be strictly above 1
func CompareBaseline(cur, baseline *RegressReport) []string {
	var fails []string
	if baseline.ParallelSpeedupFillRandom > 0 {
		floor := baseline.ParallelSpeedupFillRandom * 0.75
		if cur.ParallelSpeedupFillRandom < floor {
			fails = append(fails, fmt.Sprintf(
				"parallel_speedup_fillrandom %.2f regressed below %.2f (75%% of baseline %.2f)",
				cur.ParallelSpeedupFillRandom, floor, baseline.ParallelSpeedupFillRandom))
		}
	}
	if baseline.Server != nil && cur.Server != nil && baseline.Server.GroupCommitRatio > 0 {
		ceil := baseline.Server.GroupCommitRatio*1.25 + 0.05
		if cur.Server.GroupCommitRatio > ceil {
			fails = append(fails, fmt.Sprintf(
				"server group_commit_ratio %.3f regressed above %.3f (baseline %.3f)",
				cur.Server.GroupCommitRatio, ceil, baseline.Server.GroupCommitRatio))
		}
	}
	if baseline.GroupCommit != nil && cur.GroupCommit != nil && baseline.GroupCommit.Ratio > 0 {
		ceil := baseline.GroupCommit.Ratio*1.25 + 0.05
		if cur.GroupCommit.Ratio > ceil {
			fails = append(fails, fmt.Sprintf(
				"engine group_commit_ratio %.3f regressed above %.3f (baseline %.3f)",
				cur.GroupCommit.Ratio, ceil, baseline.GroupCommit.Ratio))
		}
	}
	if baseline.YCSBCPinReadWin > 0 {
		floor := baseline.YCSBCPinReadWin * 0.75
		if cur.YCSBCPinReadWin < floor {
			fails = append(fails, fmt.Sprintf(
				"ycsb_c_pin_read_win %.2f regressed below %.2f (75%% of baseline %.2f)",
				cur.YCSBCPinReadWin, floor, baseline.YCSBCPinReadWin))
		}
	}
	// Baseline-independent invariants: these hold by construction of the
	// commit pipeline and the pinned read path, on any machine.
	if cur.GroupCommit != nil && cur.GroupCommit.Ratio >= 1 {
		fails = append(fails, fmt.Sprintf(
			"engine group_commit_ratio %.3f is not below 1: concurrent synced writers never coalesced",
			cur.GroupCommit.Ratio))
	}
	if len(cur.YCSB) > 0 && cur.YCSBCPinReadWin <= 1 {
		fails = append(fails, fmt.Sprintf(
			"ycsb_c_pin_read_win %.2f is not above 1: pinning L0+meta did not help the read path",
			cur.YCSBCPinReadWin))
	}
	return fails
}

// regressRow converts a harness result plus engine metrics into a report
// row.
func regressRow(r Result) RegressWorkloadResult {
	return RegressWorkloadResult{
		Name:                  r.Name,
		Ops:                   r.Ops,
		OpsPerSec:             r.OpsPerSec,
		P50Micros:             float64(r.P50.Nanoseconds()) / 1e3,
		P99Micros:             float64(r.P99.Nanoseconds()) / 1e3,
		Errors:                r.Errors,
		Compactions:           r.Jobs.CompactionsStarted,
		Subcompactions:        r.Jobs.SubcompactionsStarted,
		MaxRunningJobs:        r.Jobs.MaxRunning,
		SchedDeferred:         r.Jobs.SchedDeferred,
		BytesCompactedRead:    r.Jobs.BytesRead,
		BytesCompactedWritten: r.Jobs.BytesWritten,
		StallMillis:           float64(r.Jobs.StallNanos) / 1e6,
		Writes:                r.Engine.Writes,
		WALSyncs:              r.Engine.WALSyncs,
		GroupCommitRatio:      r.Engine.GroupCommitRatio(),
		GroupedCommits:        r.Engine.GroupedCommits,
		GroupedWriters:        r.Engine.GroupedWriters,
		PrefixSeeks:           r.Engine.PrefixSeeks,
		PrefixSkips:           r.Engine.PrefixSkips,
	}
}

// regressReadLatency is the emulated device latency charged to every SST
// block read (vfs.NewReadLatency — the monolithic-SSD storage model the
// experiments use). It is what makes the profile meaningful on small or
// single-core CI machines: compaction becomes read-latency-bound, and the
// parallel scheduler wins by overlapping device waits across jobs and
// subcompaction shards rather than by burning more cores.
const regressReadLatency = 40 * time.Microsecond

// regressSyncLatency is the emulated device cost of a WAL fsync
// (vfs.NewSyncLatency) in the group-commit profile. With syncs free (pure
// memfs) commits retire faster than writers can queue and nothing
// coalesces; a realistic barrier cost is exactly what the leader/follower
// pipeline amortizes.
const regressSyncLatency = 100 * time.Microsecond

// openRegressDB builds a fresh full-SHIELD deployment tuned so the scaled
// workload is compaction-bound: a small memtable flushes constantly, a low
// L0 stall threshold makes write throughput track compaction drain rate,
// and small target files give subcompactions multiple outputs per job.
func openRegressDB(cfg RegressConfig) (*lsm.DB, error) {
	return core.Open("db", core.Config{
		Mode:              core.ModeSHIELD,
		FS:                vfs.NewReadLatency(vfs.NewMem(), regressReadLatency),
		KDS:               kds.NewLocal(kds.NewStore(kds.Policy{MaxFetches: 1}), "bench-server"),
		WALBufferSize:     512,
		EncryptionThreads: 2,
	}, lsm.Options{
		MemtableSize:        256 << 10,
		L0CompactionTrigger: 2,
		L0StopWritesTrigger: 6,
		BaseLevelSize:       512 << 10,
		TargetFileSize:      128 << 10,
		MaxBackgroundJobs:   cfg.MaxBackgroundJobs,
		MaxSubcompactions:   cfg.MaxSubcompactions,
	})
}

// RunRegression executes the regression profile: for each scheduler
// configuration, fillrandom into an empty tree, readrandom over the
// resulting keys, then overwrite — identical workloads, seeds, and thread
// counts, so the only variable is the scheduler. Progress rows go to out
// (nil discards).
func RunRegression(scale float64, out io.Writer) (*RegressReport, error) {
	if scale <= 0 {
		scale = 1.0
	}
	if out == nil {
		out = io.Discard
	}
	ops := int(40000 * scale)
	if ops < 2000 {
		ops = 2000
	}

	report := &RegressReport{
		Schema:      "shield-bench-regress/v2",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Scale:       scale,
	}

	fillRate := make(map[string]float64)
	for _, cfg := range regressConfigs {
		db, err := openRegressDB(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: open %s: %w", cfg.Name, err)
		}
		fmt.Fprintf(out, "-- %s (jobs=%d, subcompactions=%d)\n",
			cfg.Name, cfg.MaxBackgroundJobs, cfg.MaxSubcompactions)

		base := Workload{
			NumOps:    ops,
			KeyCount:  uint64(ops),
			ValueSize: 256,
			Threads:   4,
			Seed:      1789,
		}
		cr := RegressConfigResult{Config: cfg}
		run := func(r Result) {
			fmt.Fprintln(out, r)
			cr.Workloads = append(cr.Workloads, regressRow(r))
		}

		fill := FillRandom(db, base)
		run(fill)
		fillRate[cfg.Name] = fill.OpsPerSec
		if err := db.Flush(); err != nil {
			db.Close()
			return nil, fmt.Errorf("bench: flush %s: %w", cfg.Name, err)
		}
		// Drain the compaction debt fillrandom left behind so both
		// configurations start readrandom from the same quiescent tree.
		if err := db.CompactRange(); err != nil {
			db.Close()
			return nil, fmt.Errorf("bench: compact %s: %w", cfg.Name, err)
		}

		read := base
		read.Name = "readrandom"
		run(ReadRandom(db, read))

		over := base
		over.Name = "overwrite"
		over.Seed = 2297
		run(FillRandom(db, over))

		if err := db.Close(); err != nil {
			return nil, fmt.Errorf("bench: close %s: %w", cfg.Name, err)
		}
		report.Configs = append(report.Configs, cr)
	}

	if s, p := fillRate["single-job"], fillRate["parallel"]; s > 0 {
		report.ParallelSpeedupFillRandom = p / s
	}
	fmt.Fprintf(out, "-- parallel fillrandom speedup: %.2fx\n", report.ParallelSpeedupFillRandom)

	gc, err := runGroupCommitRegression(ops, out)
	if err != nil {
		return nil, err
	}
	report.GroupCommit = gc

	ycsb, win, err := runYCSBRegression(ops, out)
	if err != nil {
		return nil, err
	}
	report.YCSB = ycsb
	report.YCSBCPinReadWin = win

	srv, err := runServerRegression(ops, out)
	if err != nil {
		return nil, err
	}
	report.Server = srv
	return report, nil
}

// runGroupCommitRegression profiles the engine-level commit pipeline: a
// fully-synced concurrent fillrandom where every Put demands durability, so
// the only thing standing between the workload and one fsync per write is
// leader/follower coalescing. The ratio this reports is the acceptance
// headline: strictly below 1, or the pipeline is not grouping.
func runGroupCommitRegression(ops int, out io.Writer) (*RegressGroupCommitResult, error) {
	const threads = 8
	db, err := core.Open("db", core.Config{
		Mode:          core.ModeSHIELD,
		FS:            vfs.NewSyncLatency(vfs.NewMem(), regressSyncLatency),
		KDS:           kds.NewLocal(kds.NewStore(kds.Policy{MaxFetches: 1}), "bench-group-commit"),
		WALBufferSize: 512,
	}, lsm.Options{
		MemtableSize: 1 << 20,
		SyncWrites:   true,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: open group-commit db: %w", err)
	}
	defer db.Close() //nolint:errcheck // bench teardown

	fmt.Fprintf(out, "-- group commit (threads=%d, every write synced)\n", threads)
	res := FillRandom(db, Workload{
		Name:      "fillrandom-sync",
		NumOps:    ops,
		KeyCount:  uint64(ops),
		ValueSize: 256,
		Threads:   threads,
		Seed:      1789,
	})
	fmt.Fprintln(out, res)

	gc := &RegressGroupCommitResult{
		Threads:        threads,
		Ops:            res.Ops,
		OpsPerSec:      res.OpsPerSec,
		Writes:         res.Engine.Writes,
		WALSyncs:       res.Engine.WALSyncs,
		GroupedCommits: res.Engine.GroupedCommits,
		GroupedWriters: res.Engine.GroupedWriters,
		Ratio:          res.Engine.GroupCommitRatio(),
	}
	fmt.Fprintf(out, "-- engine group commit: %d writes -> %d wal syncs (ratio %.3f, %d coalesced groups)\n",
		gc.Writes, gc.WALSyncs, gc.Ratio, gc.GroupedCommits)
	return gc, nil
}

// ycsbMixes is the subset of the core workloads the regression profile runs:
// the update-heavy, read-mostly, and read-only zipfian mixes.
var ycsbMixes = []YCSBWorkload{YCSBA, YCSBB, YCSBC}

// runYCSBRegression runs the YCSB A/B/C mixes twice over identical
// L0-resident record sets — PinL0AndMeta off, then on — with a block cache
// far smaller than the working set and the emulated device latency charged
// to every uncached block read. The pin-off run thrashes the LRU; the
// pin-on run serves L0 from the pinned class after first touch. The
// returned win is pin-on YCSB-C throughput over pin-off.
func runYCSBRegression(ops int, out io.Writer) ([]RegressYCSBResult, float64, error) {
	records := ops / 4
	if records < 1000 {
		records = 1000
	}
	var results []RegressYCSBResult
	ycsbC := make(map[bool]float64)
	for _, pin := range []bool{false, true} {
		db, err := core.Open("db", core.Config{
			Mode:              core.ModeSHIELD,
			FS:                vfs.NewReadLatency(vfs.NewMem(), regressReadLatency),
			KDS:               kds.NewLocal(kds.NewStore(kds.Policy{MaxFetches: 1}), "bench-ycsb"),
			WALBufferSize:     512,
			EncryptionThreads: 2,
		}, lsm.Options{
			MemtableSize:        256 << 10,
			L0CompactionTrigger: 1 << 10, // keep the record set resident in L0
			L0StopWritesTrigger: 1 << 11,
			BlockCacheSize:      64 << 10, // far below the record set: unpinned reads thrash
			PinL0AndMeta:        pin,
		})
		if err != nil {
			return nil, 0, fmt.Errorf("bench: open ycsb db (pin=%v): %w", pin, err)
		}
		fmt.Fprintf(out, "-- ycsb (records=%d, pin_l0_and_meta=%v)\n", records, pin)
		if err := YCSBLoad(db, Workload{KeyCount: uint64(records), Seed: 1789}); err != nil {
			db.Close() //nolint:errcheck // bench teardown
			return nil, 0, fmt.Errorf("bench: ycsb load (pin=%v): %w", pin, err)
		}

		res := RegressYCSBResult{PinL0AndMeta: pin, Records: int64(records)}
		for _, kind := range ycsbMixes {
			r := YCSB(db, kind, Workload{
				NumOps:   ops,
				KeyCount: uint64(records),
				Threads:  4,
				Seed:     1789,
			})
			fmt.Fprintln(out, r)
			res.Workloads = append(res.Workloads, regressRow(r))
			if kind == YCSBC {
				ycsbC[pin] = r.OpsPerSec
			}
		}
		m := db.Metrics()
		res.BlockCacheHits = m.BlockCacheHits
		res.BlockCacheMisses = m.BlockCacheMisses
		res.BlockCachePinned = m.BlockCachePinned
		if err := db.Close(); err != nil {
			return nil, 0, fmt.Errorf("bench: close ycsb db (pin=%v): %w", pin, err)
		}
		results = append(results, res)
	}
	var win float64
	if ycsbC[false] > 0 {
		win = ycsbC[true] / ycsbC[false]
	}
	fmt.Fprintf(out, "-- ycsb-c pinned read win: %.2fx\n", win)
	return results, win, nil
}

// runServerRegression boots an in-process shield-server over four full-SHIELD
// shards and drives it with concurrent pipelined RESP clients, recording
// serving throughput/latency and the group-commit ratio.
func runServerRegression(ops int, out io.Writer) (*RegressServerResult, error) {
	const (
		nShards  = 4
		nClients = 8
		pipeline = 16
	)
	var shards []server.Engine
	var dbs []*lsm.DB
	closeAll := func() {
		for _, db := range dbs {
			db.Close() //nolint:errcheck // bench teardown
		}
	}
	for i := 0; i < nShards; i++ {
		db, err := core.Open("db", core.Config{
			Mode:          core.ModeSHIELD,
			FS:            vfs.NewMem(),
			KDS:           kds.NewLocal(kds.NewStore(kds.Policy{MaxFetches: 1}), fmt.Sprintf("bench-server-%d", i)),
			WALBufferSize: 512,
		}, lsm.Options{
			MemtableSize: 1 << 20,
		})
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("bench: open server shard %d: %w", i, err)
		}
		dbs = append(dbs, db)
		shards = append(shards, db)
	}
	defer closeAll()

	srv, err := server.New(server.Config{Shards: shards})
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	defer func() {
		srv.Close() //nolint:errcheck // Close only returns nil
		<-serveErr
	}()

	fmt.Fprintf(out, "-- server (shards=%d, clients=%d, pipeline=%d)\n", nShards, nClients, pipeline)
	res, err := RunNet(NetWorkload{
		Name:     "server-mixed",
		Addr:     srv.Addr(),
		Clients:  nClients,
		Pipeline: pipeline,
		NumOps:   ops,
		ReadPct:  50,
		Seed:     1789,
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(out, res)

	sr := &RegressServerResult{
		Shards:    nShards,
		Clients:   res.Clients,
		Pipeline:  res.Pipeline,
		Ops:       res.Ops,
		OpsPerSec: res.OpsPerSec,
		P50Micros: float64(res.P50.Nanoseconds()) / 1e3,
		P99Micros: float64(res.P99.Nanoseconds()) / 1e3,
		Errors:    res.Errors,
		Sets:      res.Sets,
		Gets:      res.Gets,
	}
	for _, snap := range srv.Stats() {
		sr.WriteBatches += snap.WriteBatches
		sr.WALSyncs += snap.Engine.WALSyncs
	}
	if sr.Sets > 0 {
		sr.GroupCommitRatio = float64(sr.WALSyncs) / float64(sr.Sets)
	}
	fmt.Fprintf(out, "-- group commit: %d sets -> %d batches -> %d wal syncs (ratio %.3f)\n",
		sr.Sets, sr.WriteBatches, sr.WALSyncs, sr.GroupCommitRatio)
	return sr, nil
}
