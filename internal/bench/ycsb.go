package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"

	"shield/internal/lsm"
)

// YCSBWorkload identifies one of the YCSB core workloads.
type YCSBWorkload byte

// The YCSB core workloads.
const (
	YCSBA YCSBWorkload = 'A' // 50% read / 50% update, zipfian
	YCSBB YCSBWorkload = 'B' // 95% read / 5% update, zipfian
	YCSBC YCSBWorkload = 'C' // 100% read, zipfian
	YCSBD YCSBWorkload = 'D' // 95% read-latest / 5% insert
	YCSBE YCSBWorkload = 'E' // 95% scan / 5% insert, zipfian
	YCSBF YCSBWorkload = 'F' // 50% read / 50% read-modify-write, zipfian
)

// AllYCSB lists the workloads in the paper's order.
var AllYCSB = []YCSBWorkload{YCSBA, YCSBB, YCSBC, YCSBD, YCSBE, YCSBF}

// YCSBLoad preloads the record set (the paper uses 1 KiB values, larger
// than Mixgraph's).
func YCSBLoad(db DB, w Workload) error {
	w = w.withDefaults()
	if w.ValueSize == 0 || w.ValueSize == 100 {
		w.ValueSize = 1024
	}
	return Preload(db, w)
}

// YCSB runs one core workload over a preloaded database.
func YCSB(db DB, kind YCSBWorkload, w Workload) Result {
	w = w.withDefaults()
	if w.ValueSize == 0 || w.ValueSize == 100 {
		w.ValueSize = 1024
	}
	if w.Name == "" {
		w.Name = fmt.Sprintf("ycsb-%c", kind)
	}
	kg := NewKeyGen(w.KeySize)
	vg := NewValueGen(w.ValueSize, w.Seed)
	zipf := NewZipfian(w.KeyCount, w.Seed)

	// insertCount tracks keys appended by D/E so read-latest sees them.
	var insertCount atomic.Uint64
	nextInsert := func() uint64 {
		return w.KeyCount + insertCount.Add(1) - 1
	}
	latest := func(rng *rand.Rand) uint64 {
		// Read-latest: zipfian over recency.
		limit := w.KeyCount + insertCount.Load()
		off := zipf.Next()
		if off >= limit {
			off = limit - 1
		}
		return limit - 1 - off
	}

	read := func(n uint64) error {
		_, err := db.Get(kg.Key(n))
		if err != nil && !errors.Is(err, lsm.ErrNotFound) {
			return err
		}
		return nil
	}
	update := func(n uint64) error { return db.Put(kg.Key(n), vg.Value(n)) }
	scan := func(n uint64, length int) error {
		it, err := db.NewIter()
		if err != nil {
			return err
		}
		defer it.Close()
		for ok, steps := it.SeekGE(kg.Key(n)), 0; ok && steps < length; ok, steps = it.Next(), steps+1 {
		}
		return it.Err()
	}

	return run(w, func(t int, i uint64, rng *rand.Rand) error {
		switch kind {
		case YCSBA:
			if rng.Intn(100) < 50 {
				return read(zipf.ScrambledNext())
			}
			return update(zipf.ScrambledNext())
		case YCSBB:
			if rng.Intn(100) < 95 {
				return read(zipf.ScrambledNext())
			}
			return update(zipf.ScrambledNext())
		case YCSBC:
			return read(zipf.ScrambledNext())
		case YCSBD:
			if rng.Intn(100) < 95 {
				return read(latest(rng))
			}
			return update(nextInsert())
		case YCSBE:
			if rng.Intn(100) < 95 {
				return scan(zipf.ScrambledNext(), 1+rng.Intn(100))
			}
			return update(nextInsert())
		case YCSBF:
			n := zipf.ScrambledNext()
			if rng.Intn(100) < 50 {
				return read(n)
			}
			if err := read(n); err != nil {
				return err
			}
			return update(n)
		default:
			return fmt.Errorf("bench: unknown YCSB workload %c", kind)
		}
	})
}
