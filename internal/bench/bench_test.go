package bench

import (
	"bytes"
	"fmt"
	"testing"

	"shield/internal/lsm"
	"shield/internal/vfs"
)

func newDB(t *testing.T) *lsm.DB {
	t.Helper()
	db, err := lsm.Open("db", lsm.Options{FS: vfs.NewMem(), MemtableSize: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestKeyGen(t *testing.T) {
	g := NewKeyGen(16)
	a, b := g.Key(1), g.Key(2)
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	if bytes.Compare(a, b) >= 0 {
		t.Fatal("numeric order not preserved lexicographically")
	}
	if !bytes.Equal(g.Key(7), g.Key(7)) {
		t.Fatal("not deterministic")
	}
	// Wider keys pad.
	if len(NewKeyGen(24).Key(1)) != 24 {
		t.Fatal("padding")
	}
}

func TestValueGen(t *testing.T) {
	g := NewValueGen(100, 1)
	v := g.Value(42)
	if len(v) != 100 {
		t.Fatalf("size %d", len(v))
	}
	if !bytes.Equal(v, NewValueGen(100, 1).Value(42)) {
		t.Fatal("not deterministic across instances")
	}
	if bytes.Equal(g.Value(1), g.Value(2)) {
		t.Fatal("different keys produced identical values")
	}
}

func TestZipfianSkew(t *testing.T) {
	z := NewZipfian(10_000, 1)
	counts := make(map[uint64]int)
	const n = 100_000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 10_000 {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	// Item 0 must be far more popular than a mid-range item, and the head
	// should hold a large share (theta=0.99 → item 0 ≈ 10%).
	if counts[0] < n/50 {
		t.Fatalf("head not hot: %d/%d", counts[0], n)
	}
	if counts[0] <= counts[5000]*10 {
		t.Fatalf("skew too weak: head=%d mid=%d", counts[0], counts[5000])
	}
}

func TestScrambledZipfianSpreads(t *testing.T) {
	z := NewZipfian(10_000, 1)
	seen := make(map[uint64]bool)
	for i := 0; i < 10_000; i++ {
		v := z.ScrambledNext()
		if v >= 10_000 {
			t.Fatalf("out of range: %d", v)
		}
		seen[v] = true
	}
	// Scrambling should reach a reasonable slice of the key space.
	if len(seen) < 500 {
		t.Fatalf("scrambled zipfian touched only %d distinct keys", len(seen))
	}
}

func TestParetoBounds(t *testing.T) {
	p := NewPareto(16.0, 0.2, 10, 1024, 1)
	var sum int
	const n = 50_000
	for i := 0; i < n; i++ {
		v := p.Next()
		if v < 10 || v > 1024 {
			t.Fatalf("out of bounds: %d", v)
		}
		sum += v
	}
	mean := sum / n
	// Mixgraph's production mean is ~37 bytes; accept a loose band.
	if mean < 15 || mean > 120 {
		t.Fatalf("mean value size %d outside expected band", mean)
	}
}

func TestFillAndReadWorkloads(t *testing.T) {
	db := newDB(t)
	w := Workload{NumOps: 3000, KeyCount: 2000}
	r := FillRandom(db, w)
	if r.Ops != 3000 || r.Errors != 0 {
		t.Fatalf("fillrandom: %+v", r)
	}
	if r.OpsPerSec <= 0 || r.P99 < r.P50 {
		t.Fatalf("stats: %+v", r)
	}

	r = ReadRandom(db, w)
	if r.Ops != 3000 || r.Errors != 0 {
		t.Fatalf("readrandom: %+v", r)
	}
}

func TestPreloadExactKeys(t *testing.T) {
	db := newDB(t)
	w := Workload{KeyCount: 500}
	if err := Preload(db, w); err != nil {
		t.Fatal(err)
	}
	kg := NewKeyGen(16)
	for i := uint64(0); i < 500; i += 37 {
		if _, err := db.Get(kg.Key(i)); err != nil {
			t.Fatalf("preloaded key %d missing: %v", i, err)
		}
	}
}

func TestMixedRatioRuns(t *testing.T) {
	db := newDB(t)
	w := Workload{NumOps: 2000, KeyCount: 1000, ReadPct: 50}
	if err := Preload(db, w); err != nil {
		t.Fatal(err)
	}
	r := MixedRatio(db, w)
	if r.Errors != 0 {
		t.Fatalf("mixed: %+v", r)
	}
}

func TestMixgraphRuns(t *testing.T) {
	db := newDB(t)
	w := Workload{NumOps: 2000, KeyCount: 1000}
	if err := Preload(db, w); err != nil {
		t.Fatal(err)
	}
	r := Mixgraph(db, w)
	if r.Errors != 0 {
		t.Fatalf("mixgraph: %+v", r)
	}
}

func TestYCSBAllWorkloads(t *testing.T) {
	for _, kind := range AllYCSB {
		t.Run(fmt.Sprintf("%c", kind), func(t *testing.T) {
			db := newDB(t)
			load := Workload{KeyCount: 500, ValueSize: 256}
			if err := YCSBLoad(db, load); err != nil {
				t.Fatal(err)
			}
			r := YCSB(db, kind, Workload{NumOps: 1000, KeyCount: 500, ValueSize: 256})
			if r.Errors != 0 {
				t.Fatalf("ycsb-%c: %d errors", kind, r.Errors)
			}
			if r.Ops != 1000 {
				t.Fatalf("ycsb-%c: %d ops", kind, r.Ops)
			}
		})
	}
}

func TestMultiThreadedHarness(t *testing.T) {
	db := newDB(t)
	w := Workload{NumOps: 4000, KeyCount: 2000, Threads: 4}
	r := FillRandom(db, w)
	if r.Ops != 4000 || r.Errors != 0 {
		t.Fatalf("threaded fill: %+v", r)
	}
}
