package bench

import (
	"strings"
	"testing"
	"time"
)

func TestReadWhileWriting(t *testing.T) {
	db := newDB(t)
	w := Workload{NumOps: 2000, KeyCount: 1000, Threads: 2}
	if err := Preload(db, w); err != nil {
		t.Fatal(err)
	}
	r := ReadWhileWriting(db, w)
	if r.Ops != 2000 || r.Errors != 0 {
		t.Fatalf("readwhilewriting: %+v", r)
	}
	if !strings.Contains(r.Name, "bg-writes=") {
		t.Fatalf("missing writer accounting in %q", r.Name)
	}
}

func TestSeekRandom(t *testing.T) {
	db := newDB(t)
	w := Workload{NumOps: 500, KeyCount: 2000}
	if err := Preload(db, w); err != nil {
		t.Fatal(err)
	}
	r := SeekRandom(db, w, 10)
	if r.Ops != 500 || r.Errors != 0 {
		t.Fatalf("seekrandom: %+v", r)
	}
}

func TestOverwrite(t *testing.T) {
	db := newDB(t)
	w := Workload{NumOps: 2000, KeyCount: 500}
	if err := Preload(db, w); err != nil {
		t.Fatal(err)
	}
	r := Overwrite(db, w)
	if r.Ops != 2000 || r.Errors != 0 {
		t.Fatalf("overwrite: %+v", r)
	}
	// Spot-check a value was actually overwritten (different seed).
	kg := NewKeyGen(16)
	v, err := db.Get(kg.Key(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 100 {
		t.Fatalf("value size %d", len(v))
	}
}

func TestTimed(t *testing.T) {
	calls := 0
	r := Timed("tick", 50*time.Millisecond, func() error {
		calls++
		time.Sleep(time.Millisecond)
		return nil
	})
	if r.Ops < 10 || r.Ops > 100 {
		t.Fatalf("timed ops %d", r.Ops)
	}
	if int(r.Ops) != calls {
		t.Fatalf("ops %d calls %d", r.Ops, calls)
	}
}
