// Package bench implements the workload generators and measurement harness
// behind every table and figure of the paper's evaluation: db_bench-style
// micro workloads (fillrandom, fillseq, readrandom, mixed ratios), the YCSB
// core workloads A–F, and a Mixgraph-style approximation of Facebook's
// production key-value traffic.
package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// KeyGen produces fixed-width keys over a key space.
type KeyGen struct {
	keySize int
}

// NewKeyGen returns a generator of keySize-byte keys (minimum 16 to fit the
// formatted index).
func NewKeyGen(keySize int) *KeyGen {
	if keySize < 16 {
		keySize = 16
	}
	return &KeyGen{keySize: keySize}
}

// Key renders key index n. Keys are zero-padded so lexicographic order
// matches numeric order (as db_bench does).
func (g *KeyGen) Key(n uint64) []byte {
	k := make([]byte, g.keySize)
	copy(k, fmt.Sprintf("%016d", n))
	for i := 16; i < g.keySize; i++ {
		k[i] = 'x'
	}
	return k
}

// ValueGen produces pseudo-random values that are deliberately hard to
// compress and easy to verify (each value embeds its key index).
type ValueGen struct {
	size int
	pool []byte
}

// NewValueGen returns a generator of size-byte values.
func NewValueGen(size int, seed int64) *ValueGen {
	rng := rand.New(rand.NewSource(seed))
	pool := make([]byte, 1<<20)
	for i := range pool {
		pool[i] = byte(rng.Intn(26)) + 'a'
	}
	return &ValueGen{size: size, pool: pool}
}

// Value renders the value for key index n into a fresh slice.
func (v *ValueGen) Value(n uint64) []byte {
	out := make([]byte, v.size)
	off := int(n*31) % (len(v.pool) - v.size)
	if off < 0 {
		off = 0
	}
	copy(out, v.pool[off:off+v.size])
	// Stamp the key index for verification.
	if v.size >= 16 {
		copy(out, fmt.Sprintf("%016d", n))
	}
	return out
}

// Size returns the configured value size.
func (v *ValueGen) Size() int { return v.size }

// Zipfian implements the YCSB zipfian generator (theta = 0.99 by default),
// which stdlib's rand.Zipf cannot express (it requires s > 1).
type Zipfian struct {
	mu    sync.Mutex
	rng   *rand.Rand
	items uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// NewZipfian returns a zipfian generator over [0, items) with the YCSB
// default skew.
func NewZipfian(items uint64, seed int64) *Zipfian {
	return NewZipfianTheta(items, 0.99, seed)
}

// NewZipfianTheta returns a zipfian generator with explicit theta.
func NewZipfianTheta(items uint64, theta float64, seed int64) *Zipfian {
	z := &Zipfian{
		rng:   rand.New(rand.NewSource(seed)),
		items: items,
		theta: theta,
	}
	z.zeta2 = zetaStatic(2, theta)
	z.zetan = zetaStatic(items, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(items), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zetaStatic(n uint64, theta float64) float64 {
	// Exact up to 10k items, then a standard integral approximation keeps
	// construction O(1) for large key spaces.
	if n <= 10000 {
		var sum float64
		for i := uint64(1); i <= n; i++ {
			sum += 1 / math.Pow(float64(i), theta)
		}
		return sum
	}
	sum := zetaStatic(10000, theta)
	// Integral of x^-theta from 10000 to n.
	sum += (math.Pow(float64(n), 1-theta) - math.Pow(10000, 1-theta)) / (1 - theta)
	return sum
}

// Next returns the next zipfian-distributed index in [0, items). Hot items
// are the low indexes; callers typically hash/scramble them across the key
// space.
func (z *Zipfian) Next() uint64 {
	z.mu.Lock()
	u := z.rng.Float64()
	z.mu.Unlock()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// ScrambledNext spreads the zipfian head across the key space with an FNV
// mix, as YCSB's scrambled zipfian does.
func (z *Zipfian) ScrambledNext() uint64 {
	return fnvMix(z.Next()) % z.items
}

func fnvMix(x uint64) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= (x >> (8 * i)) & 0xff
		h *= prime
	}
	return h
}

// Pareto samples value sizes from a (bounded) generalized Pareto
// distribution, matching Mixgraph's observation that production value sizes
// follow a Pareto with a small mean.
type Pareto struct {
	mu    sync.Mutex
	rng   *rand.Rand
	scale float64
	shape float64
	min   int
	max   int
}

// NewPareto returns a sampler with the given scale/shape bounded to
// [min, max] bytes.
func NewPareto(scale, shape float64, min, max int, seed int64) *Pareto {
	return &Pareto{rng: rand.New(rand.NewSource(seed)), scale: scale, shape: shape, min: min, max: max}
}

// Next samples one size.
func (p *Pareto) Next() int {
	p.mu.Lock()
	u := p.rng.Float64()
	p.mu.Unlock()
	// Inverse CDF of the generalized Pareto (location = min).
	v := float64(p.min) + p.scale*(math.Pow(1-u, -p.shape)-1)/p.shape
	n := int(v)
	if n < p.min {
		n = p.min
	}
	if n > p.max {
		n = p.max
	}
	return n
}
