package netretry

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"shield/internal/metrics"
)

// TransportError marks a failure of the transport itself — the connection
// died, the dial was refused, the deadline expired — as opposed to an
// application-level error the peer returned over a healthy connection. The
// distinction drives replica health: a transport failure demotes the
// endpoint (the peer may be gone, and the request may or may not have been
// applied), while an application error proves the peer is alive and must
// never trigger failover.
type TransportError struct{ Err error }

// Error implements error.
func (e *TransportError) Error() string { return fmt.Sprintf("transport: %v", e.Err) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *TransportError) Unwrap() error { return e.Err }

// Transport wraps err as a TransportError (nil stays nil). Idempotent:
// wrapping an error that already carries the class returns it unchanged.
func Transport(err error) error {
	if err == nil {
		return nil
	}
	if IsTransport(err) {
		return err
	}
	return &TransportError{Err: err}
}

// IsTransport reports whether err carries the transport-failure class.
func IsTransport(err error) bool {
	var te *TransportError
	return errors.As(err, &te)
}

// Health is an endpoint's availability class, as judged from the caller's
// own traffic: Up endpoints serve requests normally, Suspect endpoints have
// seen a recent transport failure (still tried, but no longer preferred),
// and Down endpoints failed repeatedly and are only re-tried after their
// backoff window expires.
type Health int

// Health states, ordered by decreasing availability.
const (
	HealthUp Health = iota
	HealthSuspect
	HealthDown
)

// String implements fmt.Stringer.
func (h Health) String() string {
	switch h {
	case HealthUp:
		return "up"
	case HealthSuspect:
		return "suspect"
	case HealthDown:
		return "down"
	default:
		return fmt.Sprintf("health(%d)", int(h))
	}
}

// downAfter is the consecutive-transport-failure count that demotes an
// endpoint from suspect to down.
const downAfter = 3

// Endpoint is one member of a Group: an address plus the health and backoff
// state the group maintains for it. All methods are safe for concurrent use.
type Endpoint struct {
	addr string
	g    *Group

	mu      sync.Mutex
	health  Health
	fails   int       // consecutive transport failures
	retryAt time.Time // down endpoints are skipped until this instant
}

// Addr returns the endpoint's address.
func (e *Endpoint) Addr() string { return e.addr }

// Health returns the endpoint's current health class.
func (e *Endpoint) Health() Health {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.health
}

// Success records a request that reached the endpoint and got an answer
// (application errors count: the peer is alive). It resets the failure
// streak and promotes the endpoint to Up.
func (e *Endpoint) Success() {
	e.mu.Lock()
	e.fails = 0
	e.health = HealthUp
	e.retryAt = time.Time{}
	e.mu.Unlock()
}

// Failure records a transport failure against the endpoint and returns its
// new health: one failure makes it Suspect, downAfter consecutive failures
// make it Down with an exponentially growing retry gate (the group's
// backoff shape, capped at BackoffMax).
func (e *Endpoint) Failure() Health {
	e.mu.Lock()
	e.fails++
	if e.fails >= downAfter {
		e.health = HealthDown
		e.retryAt = time.Now().Add(Delay(e.fails-downAfter, e.g.backoffBase, e.g.backoffMax))
	} else {
		e.health = HealthSuspect
	}
	h := e.health
	e.mu.Unlock()
	metrics.Net.Endpoint(e.addr).Errors.Add(1)
	return h
}

// usable reports whether the endpoint should be offered to callers right
// now: anything not Down, plus Down endpoints whose retry gate has expired
// (the probe that decides whether they recovered).
func (e *Endpoint) usable() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.health != HealthDown || !time.Now().Before(e.retryAt)
}

// EndpointStatus is a point-in-time view of one endpoint, for health
// surfaces (INFO sections, bench output, tests).
type EndpointStatus struct {
	Addr   string
	Health Health
	Fails  int
}

// Group tracks a set of peer endpoints with per-endpoint health and backoff
// state, and hands out endpoints in failover order: the current preferred
// endpoint first, then the others round-robin, Down endpoints last and only
// once their retry gate expires. It is the shared machinery behind the KDS
// client's replica failover and the dstore replica set.
type Group struct {
	backoffBase time.Duration
	backoffMax  time.Duration

	mu  sync.Mutex
	eps []*Endpoint
	cur int // index of the preferred (last-good) endpoint
}

// NewGroup builds a group over addrs. base and max shape the per-endpoint
// down-state retry gate; zero values select 50ms and 2s.
func NewGroup(base, max time.Duration, addrs ...string) *Group {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	g := &Group{backoffBase: base, backoffMax: max}
	for _, a := range addrs {
		g.eps = append(g.eps, &Endpoint{addr: a, g: g})
	}
	return g
}

// Len returns the number of endpoints.
func (g *Group) Len() int { return len(g.eps) }

// Endpoints returns the members in configuration order.
func (g *Group) Endpoints() []*Endpoint {
	return append([]*Endpoint(nil), g.eps...)
}

// Sequence returns the endpoints in failover order: the preferred endpoint
// first, the rest rotating after it, with endpoints whose retry gate has
// not expired moved to the back (they are still returned — a caller with no
// better option may try them rather than fail outright).
func (g *Group) Sequence() []*Endpoint {
	g.mu.Lock()
	cur := g.cur
	g.mu.Unlock()
	n := len(g.eps)
	ordered := make([]*Endpoint, 0, n)
	var gated []*Endpoint
	for i := 0; i < n; i++ {
		ep := g.eps[(cur+i)%n]
		if ep.usable() {
			ordered = append(ordered, ep)
		} else {
			gated = append(gated, ep)
		}
	}
	return append(ordered, gated...)
}

// Promote marks ep as the preferred endpoint for subsequent Sequence calls,
// recording a failover (in metrics and the endpoint's counters) when the
// preference actually moved.
func (g *Group) Promote(ep *Endpoint) {
	g.mu.Lock()
	moved := false
	for i, e := range g.eps {
		if e == ep {
			moved = i != g.cur
			g.cur = i
			break
		}
	}
	g.mu.Unlock()
	if moved {
		metrics.Net.Failovers.Add(1)
		metrics.Net.Endpoint(ep.addr).Failovers.Add(1)
	}
}

// Advance rotates the preference away from ep (normally the endpoint that
// just failed), so the next Sequence leads with a different member.
func (g *Group) Advance(ep *Endpoint) {
	g.mu.Lock()
	if len(g.eps) > 0 && g.eps[g.cur] == ep {
		g.cur = (g.cur + 1) % len(g.eps)
	}
	g.mu.Unlock()
}

// Status snapshots every endpoint's health, in configuration order.
func (g *Group) Status() []EndpointStatus {
	out := make([]EndpointStatus, 0, len(g.eps))
	for _, ep := range g.eps {
		ep.mu.Lock()
		out = append(out, EndpointStatus{Addr: ep.addr, Health: ep.health, Fails: ep.fails})
		ep.mu.Unlock()
	}
	return out
}
