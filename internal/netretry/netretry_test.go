package netretry

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"shield/internal/vfs"
)

func TestDelayDoublesAndCaps(t *testing.T) {
	base := 10 * time.Millisecond
	max := 80 * time.Millisecond
	for attempt := 0; attempt < 10; attempt++ {
		want := base << uint(attempt)
		if want > max {
			want = max
		}
		for i := 0; i < 50; i++ {
			d := Delay(attempt, base, max)
			if d < want/2 || d > want {
				t.Fatalf("Delay(%d) = %v, want in [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
}

func TestDelayZeroBase(t *testing.T) {
	if d := Delay(3, 0, time.Second); d != 0 {
		t.Fatalf("Delay with zero base = %v, want 0", d)
	}
}

func TestDelayHugeAttemptNoOverflow(t *testing.T) {
	d := Delay(1000, time.Millisecond, time.Second)
	if d <= 0 || d > time.Second {
		t.Fatalf("Delay(1000) = %v, want in (0, 1s]", d)
	}
}

func TestSleepInterrupted(t *testing.T) {
	done := make(chan struct{})
	close(done)
	start := time.Now()
	if Sleep(10*time.Second, done) {
		t.Fatal("Sleep returned true with closed done channel")
	}
	if time.Since(start) > time.Second {
		t.Fatal("interrupted Sleep took too long")
	}
}

func TestSleepNilDone(t *testing.T) {
	start := time.Now()
	if !Sleep(10*time.Millisecond, nil) {
		t.Fatal("Sleep(nil done) returned false")
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("Sleep returned early")
	}
}

type fakeTimeout struct{ timeout bool }

func (e *fakeTimeout) Error() string   { return "fake" }
func (e *fakeTimeout) Timeout() bool   { return e.timeout }
func (e *fakeTimeout) Temporary() bool { return false }

func TestIsTimeout(t *testing.T) {
	var _ net.Error = (*fakeTimeout)(nil)
	if !IsTimeout(&fakeTimeout{timeout: true}) {
		t.Fatal("timeout error not classified as timeout")
	}
	if IsTimeout(&fakeTimeout{timeout: false}) {
		t.Fatal("non-timeout net.Error classified as timeout")
	}
	if IsTimeout(errors.New("plain")) {
		t.Fatal("plain error classified as timeout")
	}
	if !IsTimeout(fmt.Errorf("wrapped: %w", &fakeTimeout{timeout: true})) {
		t.Fatal("wrapped timeout not classified as timeout")
	}
}

func TestPermanent(t *testing.T) {
	if !Permanent(fmt.Errorf("append: %w", vfs.ErrNoSpace)) {
		t.Fatal("wrapped ErrNoSpace not classified as permanent")
	}
	if Permanent(errors.New("connection reset")) {
		t.Fatal("transient error classified as permanent")
	}
	if Permanent(nil) {
		t.Fatal("nil error classified as permanent")
	}
}

func TestSeedMakesDelayDeterministic(t *testing.T) {
	sample := func() []time.Duration {
		Seed(42)
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = Delay(i, time.Millisecond, time.Second)
		}
		return out
	}
	a, b := sample(), sample()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d differs across identically seeded runs: %v vs %v", i, a[i], b[i])
		}
	}
}
