package netretry

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"shield/internal/metrics"
)

func TestTransportClassification(t *testing.T) {
	base := errors.New("connection reset")
	te := Transport(base)
	if !IsTransport(te) {
		t.Fatal("Transport(err) not classified as transport")
	}
	if !errors.Is(te, base) {
		t.Fatal("Transport(err) lost the underlying cause")
	}
	if Transport(te) != te {
		t.Fatal("double-wrapping should be a no-op")
	}
	if IsTransport(base) {
		t.Fatal("plain error misclassified as transport")
	}
	if Transport(nil) != nil {
		t.Fatal("Transport(nil) must stay nil")
	}
	wrapped := fmt.Errorf("dstore: %w", te)
	if !IsTransport(wrapped) {
		t.Fatal("classification must survive further wrapping")
	}
}

func TestEndpointHealthTransitions(t *testing.T) {
	g := NewGroup(time.Millisecond, 4*time.Millisecond, "a:1", "b:1")
	ep := g.Endpoints()[0]
	if ep.Health() != HealthUp {
		t.Fatalf("fresh endpoint health = %v, want up", ep.Health())
	}
	if h := ep.Failure(); h != HealthSuspect {
		t.Fatalf("after 1 failure health = %v, want suspect", h)
	}
	ep.Failure()
	if h := ep.Failure(); h != HealthDown {
		t.Fatalf("after %d failures health = %v, want down", downAfter, h)
	}
	ep.Success()
	if ep.Health() != HealthUp {
		t.Fatalf("success did not restore health: %v", ep.Health())
	}
	st := g.Status()
	if len(st) != 2 || st[0].Addr != "a:1" || st[0].Health != HealthUp {
		t.Fatalf("unexpected status: %+v", st)
	}
}

func TestSequenceFailoverOrder(t *testing.T) {
	g := NewGroup(time.Millisecond, 4*time.Millisecond, "a:1", "b:1", "c:1")
	eps := g.Endpoints()

	seq := g.Sequence()
	if seq[0].Addr() != "a:1" || seq[1].Addr() != "b:1" || seq[2].Addr() != "c:1" {
		t.Fatalf("initial order wrong: %v %v %v", seq[0].Addr(), seq[1].Addr(), seq[2].Addr())
	}

	// Advancing away from a failed preferred endpoint rotates the lead.
	g.Advance(eps[0])
	seq = g.Sequence()
	if seq[0].Addr() != "b:1" {
		t.Fatalf("after Advance lead = %s, want b:1", seq[0].Addr())
	}

	// A down endpoint inside its retry gate sorts last.
	for i := 0; i < downAfter; i++ {
		eps[1].Failure()
	}
	seq = g.Sequence()
	if seq[len(seq)-1].Addr() != "b:1" {
		t.Fatalf("gated-down endpoint not last: %v", seq[len(seq)-1].Addr())
	}
	// After the gate expires it is offered again (as a probe).
	time.Sleep(6 * time.Millisecond)
	found := false
	for _, ep := range g.Sequence() {
		if ep.Addr() == "b:1" {
			found = true
		}
	}
	if !found {
		t.Fatal("down endpoint vanished from the sequence")
	}
}

func TestPromoteCountsFailovers(t *testing.T) {
	metrics.Net.Reset()
	g := NewGroup(time.Millisecond, 4*time.Millisecond, "a:1", "b:1")
	eps := g.Endpoints()
	g.Promote(eps[0]) // already preferred: no failover
	if n := metrics.Net.Snapshot().Failovers; n != 0 {
		t.Fatalf("promote of current endpoint counted a failover (%d)", n)
	}
	g.Promote(eps[1])
	snap := metrics.Net.Snapshot()
	if snap.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", snap.Failovers)
	}
	if es := snap.Endpoints["b:1"]; es.Failovers != 1 {
		t.Fatalf("per-endpoint failovers = %+v, want 1 on b:1", es)
	}
	metrics.Net.Reset()
}
