// Package netretry provides the shared retry policy of the network
// clients (kds, dstore, compactsvc): exponential backoff with full
// jitter, interruptible sleeps, and timeout classification.
//
// Backoff spreads reconnection attempts after a replica failure so a
// fleet of clients does not stampede the surviving replicas; jitter
// de-synchronizes clients that failed at the same instant.
package netretry

import (
	"errors"
	"math/rand"
	"net"
	"time"
)

// Delay returns the sleep before retry number attempt (0-based), doubling
// from base up to max, jittered uniformly over [d/2, d]. A non-positive
// base disables backoff.
func Delay(attempt int, base, max time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	if attempt > 20 {
		attempt = 20 // avoid shift overflow; max caps the value anyway
	}
	d := base << uint(attempt)
	if max > 0 && d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// Sleep waits d or until done is closed, reporting false when interrupted.
// A nil done channel makes it a plain bounded sleep.
func Sleep(d time.Duration, done <-chan struct{}) bool {
	if d <= 0 {
		return true
	}
	if done == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}

// IsTimeout reports whether err is a network timeout (an expired
// deadline), as opposed to a refused or reset connection.
func IsTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
