// Package netretry provides the shared retry policy of the network
// clients (kds, dstore, compactsvc): exponential backoff with full
// jitter, interruptible sleeps, and timeout classification.
//
// Backoff spreads reconnection attempts after a replica failure so a
// fleet of clients does not stampede the surviving replicas; jitter
// de-synchronizes clients that failed at the same instant.
package netretry

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"

	"shield/internal/vfs"
)

// jitterMu guards jitterRNG; Delay is called concurrently by every network
// client in the process.
var (
	jitterMu  sync.Mutex
	jitterRNG = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// Seed re-seeds the jitter source so backoff delays replay deterministically.
// The simulation harness calls it once per run with the run's master seed;
// production code never needs it.
func Seed(seed int64) {
	jitterMu.Lock()
	jitterRNG = rand.New(rand.NewSource(seed))
	jitterMu.Unlock()
}

// Delay returns the sleep before retry number attempt (0-based), doubling
// from base up to max, jittered uniformly over [d/2, d]. A non-positive
// base disables backoff.
func Delay(attempt int, base, max time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	if attempt > 20 {
		attempt = 20 // avoid shift overflow; max caps the value anyway
	}
	d := base << uint(attempt)
	if max > 0 && d > max {
		d = max
	}
	half := d / 2
	jitterMu.Lock()
	j := jitterRNG.Int63n(int64(half) + 1)
	jitterMu.Unlock()
	return half + time.Duration(j)
}

// Sleep waits d or until done is closed, reporting false when interrupted.
// A nil done channel makes it a plain bounded sleep.
func Sleep(d time.Duration, done <-chan struct{}) bool {
	if d <= 0 {
		return true
	}
	if done == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}

// IsTimeout reports whether err is a network timeout (an expired
// deadline), as opposed to a refused or reset connection.
func IsTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Permanent reports whether err is a permanent condition that retrying the
// same request cannot fix, so retry loops must surface it immediately
// instead of burning their attempt budget. Out-of-space is the canonical
// case: the bytes will not fit on the next attempt either, and the caller
// (the LSM write path) has its own degraded-mode handling for it.
func Permanent(err error) bool {
	return errors.Is(err, vfs.ErrNoSpace)
}
