// Package vetutil holds the small amount of go/types plumbing the shield-vet
// analyzers share: resolving callees, classifying receiver types by method
// set, and recognizing key-material expressions by name and type.
package vetutil

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Callee resolves the *types.Func a call invokes (package function or
// method), or nil for calls through function values, conversions, and
// built-ins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call: os.Open, fmt.Errorf, ...
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// ReceiverType returns the static type of a method call's receiver
// expression, or nil for non-method calls.
func ReceiverType(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if _, ok := info.Selections[sel]; !ok {
		return nil // package-qualified, not a method
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return nil
	}
	return tv.Type
}

// HasMethod reports whether t (or *t) has a method with the given name,
// either directly or via an interface's method set. This is how analyzers
// recognize "an FS-shaped thing" (has SyncDir) without importing
// shield/internal/vfs — which also lets self-contained test fixtures model
// the interfaces.
func HasMethod(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if ms := types.NewMethodSet(t); lookup(ms, name) {
		return true
	}
	if _, ok := t.Underlying().(*types.Pointer); ok {
		return false
	}
	return lookup(types.NewMethodSet(types.NewPointer(t)), name)
}

func lookup(ms *types.MethodSet, name string) bool {
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

// PkgPath returns f's package path, or "" for builtins.
func PkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// PathIs reports whether pkgPath equals suffix or ends in "/"+suffix, so
// both "shield/internal/vfs" and a fixture's "vfs" match suffix "vfs".
func PathIs(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}

// IsNamed reports whether t's core named type (through pointers) has the
// given name.
func IsNamed(t types.Type, name string) bool {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
			continue
		case *types.Named:
			return tt.Obj().Name() == name
		case *types.Alias:
			t = types.Unalias(tt)
			continue
		default:
			return false
		}
	}
}

// keyNameRE matches identifiers that, by this repo's conventions, hold key
// material: DEKs, derived AES/HMAC keys, passkeys, master secrets.
var keyNameRE = regexp.MustCompile(`(?i)(dek|key|passkey|secret|master)`)

// KeyName reports whether an identifier name smells like key material.
// KeyIDs are excluded by callers via the type check (KeyID is a string and
// deliberately public; key *bytes* are what must not leak).
func KeyName(name string) bool {
	return keyNameRE.MatchString(name)
}

// RootName digs the base identifier out of an expression: aesKey,
// c.hmacKey, dk[:16], (k) all resolve to their underlying name.
func RootName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.SliceExpr:
		return RootName(e.X)
	case *ast.IndexExpr:
		return RootName(e.X)
	case *ast.CallExpr: // conversions like []byte(x)
		if len(e.Args) == 1 {
			return RootName(e.Args[0])
		}
	case *ast.UnaryExpr:
		return RootName(e.X)
	case *ast.StarExpr:
		return RootName(e.X)
	}
	return ""
}

// IsByteSlice reports whether t is []byte or a fixed-size byte array
// (through named types) — the shapes key material takes.
func IsByteSlice(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		b, ok := u.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	case *types.Array:
		b, ok := u.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	}
	return false
}

// IsErrorType reports whether t implements the error interface.
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
