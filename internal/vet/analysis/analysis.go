// Package analysis is a minimal, dependency-free subset of the
// golang.org/x/tools/go/analysis framework: an Analyzer inspects one
// type-checked package at a time and reports Diagnostics.
//
// The repo deliberately has zero external module dependencies, so shield-vet
// cannot link against x/tools; this package mirrors the parts of its API the
// suite needs (Analyzer, Pass, Diagnostic) on top of the standard library's
// go/ast and go/types. Analyzers written against it port to the real
// framework with only import changes.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in the suppression
	// directive (//shield:no<Name> <reason>).
	Name string

	// Doc states the invariant the analyzer enforces and why.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report emits one diagnostic. The Pass wraps it with suppression
	// handling: a //shield:no<name> directive with a justification on the
	// diagnostic's line, the line above it, or the enclosing function's doc
	// comment silences the finding.
	Report func(Diagnostic)

	// SuppressionUsed, if set, is invoked whenever a directive silences a
	// finding, identified by the directive comment's own file:line and
	// normalized name ("nofs", "nosyncdir", ...). The shield-vet
	// -suppressions audit uses it to find stale directives that no longer
	// suppress anything.
	SuppressionUsed func(file string, line int, name string)

	directives map[string][]directive // filename -> sorted by line
	funcDocs   []funcDoc
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a diagnostic at pos unless a matching
// suppression directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	if p.Suppressed(pos) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// directive is one parsed //shield:noXXX comment.
type directive struct {
	line   int
	name   string // e.g. "nosyncdir"
	reason string
}

type funcDoc struct {
	file       string
	start, end int // line span of the function body
	names      []string
	reasons    []string
	lines      []int // comment line of each directive, for usage tracking
}

// DirectivePrefix introduces a suppression comment: //shield:no<analyzer> <why>.
const DirectivePrefix = "shield:"

// initDirectives scans all comments once per pass.
func (p *Pass) initDirectives() {
	if p.directives != nil {
		return
	}
	p.directives = make(map[string][]directive)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, DirectivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, DirectivePrefix)
				name, reason, _ := strings.Cut(rest, " ")
				pos := p.Fset.Position(c.Pos())
				p.directives[pos.Filename] = append(p.directives[pos.Filename], directive{
					line:   pos.Line,
					name:   name,
					reason: strings.TrimSpace(reason),
				})
			}
		}
		// Function-doc-level suppression: a directive in a FuncDecl's doc
		// comment covers the whole body (used when a function legitimately
		// violates an invariant in several places, e.g. a client that
		// serializes requests over one connection under a mutex).
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			var names, reasons []string
			var lines []int
			for _, c := range fd.Doc.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, DirectivePrefix) {
					continue
				}
				name, reason, _ := strings.Cut(strings.TrimPrefix(text, DirectivePrefix), " ")
				names = append(names, name)
				reasons = append(reasons, strings.TrimSpace(reason))
				lines = append(lines, p.Fset.Position(c.Pos()).Line)
			}
			if len(names) == 0 {
				continue
			}
			start := p.Fset.Position(fd.Body.Pos())
			end := p.Fset.Position(fd.Body.End())
			p.funcDocs = append(p.funcDocs, funcDoc{
				file: start.Filename, start: start.Line, end: end.Line,
				names: names, reasons: reasons, lines: lines,
			})
		}
	}
}

// Suppressed reports whether a diagnostic of this pass's analyzer at pos is
// silenced by a //shield:no<name> directive with a non-empty justification.
// A directive without a justification does not suppress — the invariant is
// that every exemption documents why it is safe. When a directive fires, the
// SuppressionUsed hook (if any) is told which one.
func (p *Pass) Suppressed(pos token.Pos) bool {
	p.initDirectives()
	want := DirectiveName(p.Analyzer.Name)
	position := p.Fset.Position(pos)
	for _, d := range p.directives[position.Filename] {
		if d.name != want {
			continue
		}
		if d.line == position.Line || d.line == position.Line-1 {
			if d.reason == "" {
				return false
			}
			if p.SuppressionUsed != nil {
				p.SuppressionUsed(position.Filename, d.line, d.name)
			}
			return true
		}
	}
	for _, fd := range p.funcDocs {
		if fd.file != position.Filename || position.Line < fd.start || position.Line > fd.end {
			continue
		}
		for i, n := range fd.names {
			if n == want && fd.reasons[i] != "" {
				if p.SuppressionUsed != nil {
					p.SuppressionUsed(fd.file, fd.lines[i], n)
				}
				return true
			}
		}
	}
	return false
}

// DirectiveName maps an analyzer name to its suppression-directive name:
// //shield:no<analyzer>, except nofs, which already carries its "no" (the
// directive is //shield:nofs, not //shield:nonofs). The exception is
// exact-match: noncebound's directive is //shield:nononcebound.
func DirectiveName(analyzer string) string {
	if analyzer == "nofs" {
		return analyzer
	}
	return "no" + analyzer
}

// Directive is one //shield:no<analyzer> comment found in a file, for the
// shield-vet -suppressions audit.
type Directive struct {
	File   string
	Line   int
	Name   string // as written, e.g. "nosyncdir"
	Reason string
}

// ScanDirectives enumerates every shield: directive in files, in file order.
// Doc-comment directives are included once (doc comments are also members of
// ast.File.Comments).
func ScanDirectives(fset *token.FileSet, files []*ast.File) []Directive {
	var out []Directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, DirectivePrefix) {
					continue
				}
				name, reason, _ := strings.Cut(strings.TrimPrefix(text, DirectivePrefix), " ")
				pos := fset.Position(c.Pos())
				out = append(out, Directive{
					File:   pos.Filename,
					Line:   pos.Line,
					Name:   name,
					Reason: strings.TrimSpace(reason),
				})
			}
		}
	}
	return out
}

// InTestFile reports whether pos is inside a _test.go file. All shield-vet
// analyzers exempt test code: tests exercise raw os APIs, craft corrupt
// inputs, and print secrets on purpose.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}
