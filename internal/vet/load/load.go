// Package load parses and type-checks packages of this module (and analyzer
// test fixtures) for shield-vet, without golang.org/x/tools.
//
// Resolution is deliberately simple because the module has no external
// dependencies: an import path inside the module maps to a directory under
// the module root; fixture roots (testdata/src) are consulted next; anything
// else is assumed to be standard library, resolved with go/build (which
// evaluates build constraints) and type-checked from GOROOT source with
// IgnoreFuncBodies — analyzers only need the exported API of imports, and
// skipping std function bodies cuts load time severalfold. No pre-built
// export data or network access is needed.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed, type-checked package.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files only; see Loader doc
	Types *types.Package
	Info  *types.Info

	// TypeErrors collects type-checker complaints. Analysis proceeds
	// best-effort on a partially checked package.
	TypeErrors []error
}

// Loader loads packages for analysis. Test files (_test.go) are not loaded:
// every shield-vet analyzer exempts test code, so skipping them avoids
// type-checking external test packages entirely.
//
// LoadDir is safe for concurrent use: each package — standard library
// included — is parsed and type-checked exactly once (concurrent requests
// for the same path wait on the first), and all imports resolve through the
// same cache. This is what lets the shield-vet driver fan packages out over
// a worker pool.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string

	// FixtureRoots are extra GOPATH-style src roots (testdata/src) checked
	// before the standard library, so analyzer fixtures can model packages
	// like "vfs" or "dstore" with short import paths.
	FixtureRoots []string

	mu   sync.Mutex
	pkgs map[string]*entry
	ctxt build.Context
}

// entry is one package's load slot: the first requester does the work,
// everyone else waits on done.
type entry struct {
	done chan struct{}
	pkg  *Package
	err  error
}

// NewLoader creates a loader rooted at the module containing dir (found by
// walking up to go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	// Std packages are resolved with cgo disabled so go/build selects the
	// pure-Go fallback files; cgo variants would reference generated
	// symbols that do not exist when type-checking from source.
	ctxt := build.Default
	ctxt.CgoEnabled = false
	return &Loader{
		Fset:       token.NewFileSet(),
		ModulePath: modPath,
		ModuleDir:  root,
		pkgs:       make(map[string]*entry),
		ctxt:       ctxt,
	}, nil
}

func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod")) //shield:nofs the vet tool reads Go sources directly; there is no vfs seam beneath the toolchain
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("load: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		d = parent
	}
}

// Import implements types.Importer, so a Loader can be handed straight to
// types.Config. Module-internal paths and fixture paths recurse into this
// loader; everything else is resolved against GOROOT.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.importWithChain(path, l.ModuleDir, nil)
}

// chainImporter threads the current goroutine's import stack through
// types.Config.Check so same-goroutine import cycles are reported instead
// of deadlocking on their own load entry. It implements ImporterFrom so the
// type checker hands us the importing file's directory, which go/build
// needs to resolve GOROOT-vendored paths (e.g. golang.org/x/net inside net).
type chainImporter struct {
	l     *Loader
	chain []string
}

func (c chainImporter) Import(path string) (*types.Package, error) {
	return c.l.importWithChain(path, c.l.ModuleDir, c.chain)
}

func (c chainImporter) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	return c.l.importWithChain(path, srcDir, c.chain)
}

func (l *Loader) importWithChain(path, srcDir string, chain []string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	for _, p := range chain {
		if p == path {
			return nil, fmt.Errorf("load: import cycle through %s", path)
		}
	}
	if dir, ok := l.dirFor(path); ok {
		p, err := l.load(path, dir, chain)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.stdImport(path, srcDir, chain)
}

// stdImport type-checks a GOROOT package from source, memoized in the same
// concurrent cache as module packages. go/build evaluates build constraints
// and vendor redirections; function bodies are skipped (IgnoreFuncBodies) —
// importers only need the exported API, and std bodies dominate load time.
func (l *Loader) stdImport(path, srcDir string, chain []string) (*types.Package, error) {
	bp, err := l.ctxt.Import(path, srcDir, 0)
	if err != nil {
		return nil, fmt.Errorf("load: resolve %s: %w", path, err)
	}
	p, err := l.loadStd(bp, chain)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

// loadStd is the std-package twin of load: same entry memoization (keyed by
// the canonical import path, so vendored aliases collapse), but parsing
// skips comments and type-checking skips function bodies.
func (l *Loader) loadStd(bp *build.Package, chain []string) (*Package, error) {
	path := bp.ImportPath
	for _, p := range chain {
		if p == path {
			return nil, fmt.Errorf("load: import cycle through %s", path)
		}
	}
	l.mu.Lock()
	if e, ok := l.pkgs[path]; ok {
		l.mu.Unlock()
		<-e.done
		return e.pkg, e.err
	}
	e := &entry{done: make(chan struct{})}
	l.pkgs[path] = e
	l.mu.Unlock()

	e.pkg, e.err = l.doLoadStd(bp, append(chain, path))
	close(e.done)
	return e.pkg, e.err
}

func (l *Loader) doLoadStd(bp *build.Package, chain []string) (*Package, error) {
	p := &Package{Path: bp.ImportPath, Dir: bp.Dir, Fset: l.Fset}
	for _, n := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(bp.Dir, n), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", bp.ImportPath, err)
		}
		p.Files = append(p.Files, f)
	}
	if len(p.Files) == 0 {
		return nil, fmt.Errorf("load %s: no buildable Go files in %s", bp.ImportPath, bp.Dir)
	}
	conf := types.Config{
		Importer:         chainImporter{l: l, chain: chain},
		IgnoreFuncBodies: true,
		FakeImportC:      true,
		Error:            func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	tpkg, err := conf.Check(bp.ImportPath, l.Fset, p.Files, nil)
	if tpkg == nil {
		return nil, fmt.Errorf("load %s: %w", bp.ImportPath, err)
	}
	if len(p.TypeErrors) > 0 {
		return nil, fmt.Errorf("load %s: %w", bp.ImportPath, p.TypeErrors[0])
	}
	p.Types = tpkg
	return p, nil
}

// dirFor resolves an import path to a directory, if it is module-internal or
// under a fixture root.
func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.ModulePath {
		return l.ModuleDir, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), true
	}
	for _, root := range l.FixtureRoots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir, true
		}
	}
	return "", false
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir) //shield:nofs source-tree walk, same as findModule above
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir loads the package in dir, deriving its import path from the module
// root or fixture roots. Safe for concurrent use.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := l.importPathOf(abs)
	return l.load(path, abs, nil)
}

func (l *Loader) importPathOf(abs string) string {
	for _, root := range l.FixtureRoots {
		if rel, err := filepath.Rel(root, abs); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	if rel, err := filepath.Rel(l.ModuleDir, abs); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return l.ModulePath
		}
		return l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return filepath.ToSlash(abs)
}

// load returns the cached package for path, or parses and type-checks it.
// The first requester populates the entry; concurrent requesters block on
// its done channel. chain is the requesting goroutine's import stack.
func (l *Loader) load(path, dir string, chain []string) (*Package, error) {
	l.mu.Lock()
	if e, ok := l.pkgs[path]; ok {
		l.mu.Unlock()
		<-e.done
		return e.pkg, e.err
	}
	e := &entry{done: make(chan struct{})}
	l.pkgs[path] = e
	l.mu.Unlock()

	e.pkg, e.err = l.doLoad(path, dir, append(chain, path))
	close(e.done)
	return e.pkg, e.err
}

func (l *Loader) doLoad(path, dir string, chain []string) (*Package, error) {
	p := &Package{Path: path, Dir: dir, Fset: l.Fset}

	ents, err := os.ReadDir(dir) //shield:nofs source-tree walk, same as findModule above
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		file := filepath.Join(dir, n)
		f, err := parser.ParseFile(l.Fset, file, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
		if ignored(f) {
			continue
		}
		p.Files = append(p.Files, f)
	}
	if len(p.Files) == 0 {
		return nil, fmt.Errorf("load %s: no buildable Go files in %s", path, dir)
	}

	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: chainImporter{l: l, chain: chain},
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, p.Files, p.Info)
	if tpkg == nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	p.Types = tpkg
	return p, nil
}

// ignored reports whether a file opts out of the build with a constraint the
// loader does not evaluate (e.g. //go:build ignore or tools). The module has
// no platform-specific files, so anything constrained is skipped wholesale.
func ignored(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//go:build") || strings.HasPrefix(c.Text, "// +build") {
				return true
			}
		}
	}
	return false
}

// Expand resolves command-line patterns ("./...", "dir/...", plain dirs,
// module-relative import paths) into package directories, skipping testdata,
// vendor, and hidden directories.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if abs, err := filepath.Abs(d); err == nil && !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := walkPackages(l.ModuleDir, add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			root := strings.TrimSuffix(pat, "/...")
			if d, ok := l.dirFor(root); ok {
				root = d
			}
			if err := walkPackages(root, add); err != nil {
				return nil, err
			}
		default:
			if d, ok := l.dirFor(pat); ok {
				add(d)
			} else {
				add(pat)
			}
		}
	}
	return dirs, nil
}

func walkPackages(root string, add func(string)) error {
	return filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "node_modules") {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			add(p)
		}
		return nil
	})
}
