package errclass_test

import (
	"testing"

	"shield/internal/vet/analyzers/errclass"
	"shield/internal/vet/vettest"
)

func TestErrClass(t *testing.T) {
	vettest.Run(t, "testdata", errclass.Analyzer, "a")
}
