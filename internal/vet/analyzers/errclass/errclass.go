// Package errclass keeps error classification alive across wrapping.
//
// The engine routes on error classes: lsm.ErrCorruption decides whether
// scrub/quarantine machinery engages, core.ErrDegraded tells callers to
// retry later, kds/dstore sentinels drive retry-vs-fail-fast. A
// fmt.Errorf("context: %v", err) flattens the class to text — errors.Is
// stops matching, and a corruption error quietly becomes a generic failure
// that nothing quarantines.
//
// Rule: in a fmt.Errorf call, an argument whose static type implements
// error must be matched to the %w verb — unless some other argument in the
// same call is wrapped with %w, which is the deliberate reclassification
// idiom this repo uses (fmt.Errorf("%w: resolving DEK: %v", ErrDegraded,
// err) intentionally demotes the cause to text while installing the class
// that matters). errors.New(err.Error()) is flagged for the same reason.
//
// Suppress with //shield:noerrclass <reason> where discarding the class is
// the point (e.g. an error deliberately reduced to a log string at the top
// of a binary).
package errclass

import (
	"go/ast"
	"go/constant"

	"shield/internal/vet/analysis"
	"shield/internal/vet/vetutil"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "errclass",
	Doc:  "errors must be wrapped with %w (or deliberately reclassified alongside a %w sentinel), not flattened with %v/%s",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pass.InTestFile(call.Pos()) {
				return false
			}
			fn := vetutil.Callee(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			switch {
			case vetutil.PkgPath(fn) == "fmt" && fn.Name() == "Errorf":
				checkErrorf(pass, call)
			case vetutil.PkgPath(fn) == "errors" && fn.Name() == "New":
				checkErrorsNew(pass, call)
			}
			return true
		})
	}
	return nil
}

func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs := formatVerbs(constant.StringVal(tv.Value))
	hasW := false
	for _, v := range verbs {
		if v == 'w' {
			hasW = true
		}
	}
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) {
			break
		}
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || !vetutil.IsErrorType(tv.Type) {
			continue
		}
		if verbs[i] == 'w' {
			continue
		}
		if hasW {
			continue // reclassification idiom: a sentinel carries the class
		}
		pass.Reportf(arg.Pos(),
			"error formatted with %%%c loses its class (errors.Is/As stop matching): wrap with %%w, or reclassify alongside a %%w sentinel, or annotate //shield:noerrclass <reason>",
			verbs[i])
	}
}

func checkErrorsNew(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	found := false
	ast.Inspect(call.Args[0], func(n ast.Node) bool {
		inner, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Error" {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[sel.X]; ok && vetutil.IsErrorType(tv.Type) {
			found = true
		}
		return true
	})
	if found {
		pass.Reportf(call.Pos(),
			"errors.New(err.Error()) flattens an error to text: wrap the original with %%w instead, or annotate //shield:noerrclass <reason>")
	}
}

// formatVerbs extracts the verb letters of a format string in argument
// order. Width/precision stars consume arguments too, and are returned as
// '*' entries so indices line up.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			if c == '%' {
				break // literal %%
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if (c >= '0' && c <= '9') || c == '.' || c == '+' || c == '-' || c == '#' || c == ' ' {
				i++
				continue
			}
			if c == '[' { // explicit argument index: bail, too rare to model
				return nil
			}
			verbs = append(verbs, c)
			break
		}
	}
	return verbs
}
