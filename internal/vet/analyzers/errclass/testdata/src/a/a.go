// Package a exercises the errclass analyzer: errors flattened with %v/%s or
// errors.New(err.Error()) are flagged; %w wrapping and the reclassification
// idiom (a %w sentinel plus a demoted %v cause) are not.
package a

import (
	"errors"
	"fmt"
)

// ErrDegraded is a routing sentinel.
var ErrDegraded = errors.New("degraded")

func flattensWithV(err error) error {
	return fmt.Errorf("open store: %v", err) // want `error formatted with %v loses its class`
}

func flattensWithS(err error) error {
	return fmt.Errorf("open store: %s", err) // want `error formatted with %s loses its class`
}

func wrapsProperly(err error) error {
	return fmt.Errorf("open store: %w", err)
}

func reclassifies(err error) error {
	return fmt.Errorf("%w: resolving DEK: %v", ErrDegraded, err)
}

func newFromError(err error) error {
	return errors.New(err.Error()) // want `errors\.New\(err\.Error\(\)\) flattens an error to text`
}

func plainStringsAreFine(path string) error {
	return fmt.Errorf("open %s: not found", path)
}

func starWidthKeepsIndicesAligned(err error, w int) error {
	return fmt.Errorf("%*d attempts: %v", w, 3, err) // want `error formatted with %v loses its class`
}

func suppressedWithReason(err error) string {
	//shield:noerrclass reduced to a log line at the binary's top level
	return fmt.Errorf("fatal: %v", err).Error()
}

func bareDirectiveDoesNotSuppress(err error) error {
	//shield:noerrclass
	return fmt.Errorf("fatal: %v", err) // want `error formatted with %v loses its class`
}
