package atomics_test

import (
	"testing"

	"shield/internal/vet/analyzers/atomics"
	"shield/internal/vet/vettest"
)

func TestAtomics(t *testing.T) {
	vettest.Run(t, "testdata", atomics.Analyzer, "a")
}
