// Package a exercises the atomics analyzer: mixed atomic/plain access to the
// same field, copying values that contain sync/atomic types, value
// receivers, and the suppression forms.
package a

import "sync/atomic"

// --- mixed access: s.hits is atomic in Add, plain in Reset/Snapshot.

type stats struct {
	hits   int64
	misses int64
}

func (s *stats) Add() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) Reset() {
	s.hits = 0 // want `non-atomic access to hits`
}

func (s *stats) Snapshot() int64 {
	return s.hits // want `non-atomic access to hits`
}

// misses is only ever plain; no finding.
func (s *stats) MissesPlain() int64 {
	s.misses++
	return s.misses
}

// consistent atomic access is fine.
func (s *stats) Load() int64 {
	return atomic.LoadInt64(&s.hits)
}

// --- package-level var.

var gauge int64

func bump() {
	atomic.AddInt64(&gauge, 1)
}

func read() int64 {
	return gauge // want `non-atomic access to gauge`
}

// --- copying atomic-bearing values.

type counters struct {
	n atomic.Int64
}

type wrapper struct {
	c counters
}

// value receiver copies the atomic state.
func (c counters) Bad() int64 { // want `value receiver`
	return c.n.Load()
}

// pointer receiver is the correct form.
func (c *counters) Good() int64 {
	return c.n.Load()
}

func copies(c *counters, w wrapper) {
	cp := *c // want `copying a value of type a\.counters`
	_ = cp
	cw := w // want `copying a value of type a\.wrapper`
	_ = cw
	use(w) // want `copying a value of type a\.wrapper`
}

func use(wrapper) {}

// composite literals and pointers are not copies of shared state.
func fresh() *counters {
	c := counters{}
	p := &c
	return p
}

// a plain struct with no atomics copies freely.
type plain struct{ n int64 }

func copyPlain(p plain) plain {
	q := p
	return q
}

// --- atomic.Value / atomic.Pointer receivers must not be copied either.

type handle struct {
	v atomic.Value
}

func copyHandle(h *handle) {
	hv := *h // want `copying a value of type a\.handle`
	_ = hv
}

// --- suppression with a reason silences; bare directive does not.

type boot struct {
	ready int64
}

func initBoot(b *boot) {
	atomic.StoreInt64(&b.ready, 1)
	//shield:noatomics single-threaded constructor; the value has not escaped yet
	b.ready = 0
}

func initBootBare(b *boot) {
	//shield:noatomics
	b.ready = 1 // want `non-atomic access to ready`
}
