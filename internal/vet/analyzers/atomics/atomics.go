// Package atomics enforces the discipline that makes sync/atomic sound:
//
//  1. Mixed access: a variable or struct field that is accessed through a
//     sync/atomic function anywhere (atomic.AddInt64(&s.n, 1)) must be
//     accessed atomically everywhere. A single plain read or write
//     re-introduces the data race the atomic calls were meant to remove —
//     exactly the class of the block-cache stat bug fixed in the serving PR.
//  2. No copying: a value whose type is (or contains, transitively through
//     struct fields and arrays) one of the sync/atomic types
//     (atomic.Int64, atomic.Pointer[T], atomic.Value, ...) must not be
//     copied: methods need pointer receivers, and assignments or by-value
//     arguments that duplicate an existing value tear the atomic's
//     internal state. Composite literals and direct constructor returns
//     are fine — a copy is only dangerous once the value is shared.
//
// Sites that are provably single-threaded (initialization before the value
// escapes) can be annotated //shield:noatomics <reason>.
package atomics

import (
	"go/ast"
	"go/token"
	"go/types"

	"shield/internal/vet/analysis"
	"shield/internal/vet/vetutil"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "atomics",
	Doc:  "fields touched by sync/atomic must be accessed atomically everywhere, and values containing atomic types must not be copied",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	checkMixedAccess(pass)
	checkCopies(pass)
	return nil
}

// --- mixed atomic / plain access ---

// checkMixedAccess finds objects passed by address to sync/atomic functions,
// then flags every other (non-atomic) use of those objects.
func checkMixedAccess(pass *analysis.Pass) {
	atomicObjs := map[types.Object][]token.Pos{} // object -> atomic-use positions
	atomicArgs := map[ast.Node]bool{}            // the exact &x / &x.f operand nodes

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := vetutil.Callee(pass.TypesInfo, call)
			if fn == nil || vetutil.PkgPath(fn) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				if obj := referredObject(pass, u.X); obj != nil {
					atomicObjs[obj] = append(atomicObjs[obj], call.Pos())
					atomicArgs[ast.Unparen(u.X)] = true
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var obj types.Object
			switch e := n.(type) {
			case *ast.SelectorExpr:
				if atomicArgs[n] {
					return false
				}
				if sel, ok := pass.TypesInfo.Selections[e]; ok {
					obj = sel.Obj()
				}
			case *ast.Ident:
				if atomicArgs[n] {
					return false
				}
				obj = pass.TypesInfo.Uses[e]
			default:
				return true
			}
			if obj == nil {
				return true
			}
			if _, ok := atomicObjs[obj]; !ok {
				return true
			}
			if pass.InTestFile(n.Pos()) {
				return false
			}
			pass.Reportf(n.Pos(),
				"non-atomic access to %s, which is accessed with sync/atomic elsewhere (e.g. %s): mixing plain and atomic access is a data race",
				obj.Name(), pass.Fset.Position(atomicObjs[obj][0]))
			return false
		})
	}
}

// referredObject resolves the field or variable an atomic call's &-operand
// refers to. Only package-level vars and struct fields are tracked: locals
// cannot be shared without also being visible here.
func referredObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				return v
			}
		}
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
	case *ast.IndexExpr:
		return referredObject(pass, e.X)
	}
	return nil
}

// --- copy discipline for atomic-bearing types ---

func checkCopies(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || pass.InTestFile(fd.Pos()) {
				continue
			}
			// Value receiver on an atomic-bearing type.
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				rt := pass.TypesInfo.Types[fd.Recv.List[0].Type].Type
				if rt != nil {
					if _, isPtr := rt.Underlying().(*types.Pointer); !isPtr {
						if name := containsAtomic(rt, nil); name != "" {
							pass.Reportf(fd.Recv.List[0].Type.Pos(),
								"method %s has a value receiver of type %s, which contains %s: every call copies the atomic state; use a pointer receiver",
								fd.Name.Name, rt, name)
						}
					}
				}
			}
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for i, rhs := range n.Rhs {
						// Assigning to _ discards the value; nothing shared
						// is torn.
						if len(n.Lhs) == len(n.Rhs) {
							if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
								continue
							}
						}
						checkCopySource(pass, rhs)
					}
				case *ast.CallExpr:
					if vetutil.Callee(pass.TypesInfo, n) != nil || isConversion(pass, n) {
						for _, arg := range n.Args {
							checkCopySource(pass, arg)
						}
					}
				case *ast.ReturnStmt:
					for _, r := range n.Results {
						checkCopySource(pass, r)
					}
				}
				return true
			})
		}
	}
}

// checkCopySource flags e when evaluating it copies an existing
// atomic-bearing value: a variable, field selection, dereference, or index —
// not a composite literal, address-of, or call result.
func checkCopySource(pass *analysis.Pass, e ast.Expr) {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return
	}
	// Using a variable of pointer type copies the pointer, not the value.
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
		return
	}
	// Method expressions / package selectors resolve to non-values.
	if !tv.IsValue() {
		return
	}
	if name := containsAtomic(tv.Type, nil); name != "" {
		if pass.InTestFile(e.Pos()) {
			return
		}
		pass.Reportf(e.Pos(),
			"copying a value of type %s, which contains %s: copies tear atomic state and split the counter; pass a pointer",
			tv.Type, name)
	}
}

func isConversion(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	return ok && tv.IsType()
}

// containsAtomic reports the first sync/atomic type found inside t
// (transitively through named types, struct fields, and arrays), or "".
func containsAtomic(t types.Type, seen map[types.Type]bool) string {
	if t == nil {
		return ""
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	if seen[t] {
		return ""
	}
	seen[t] = true

	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			return "atomic." + obj.Name()
		}
	}
	if alias, ok := t.(*types.Alias); ok {
		return containsAtomic(types.Unalias(alias), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := containsAtomic(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return containsAtomic(u.Elem(), seen)
	}
	return ""
}
