// Package authread confines unauthenticated decryption to annotated sites.
//
// Format v2 seals every block with AES-GCM: a read either returns the bytes
// that were written or fails with an integrity error. The v1 CTR reader
// (crypt.NewDecryptingReaderAt) has no such guarantee — CTR decryption of
// tampered ciphertext yields silently wrong plaintext — so every call to it
// is a hole in the authenticated-read story. The holes that must exist
// (reading v1 files written before format v2, recovery and scrub paths that
// must accept both formats) are few, deliberate, and need a written reason;
// a new one appearing anywhere else is a regression that reopens the silent
// tampering window the format migration closed.
//
// Rule: any call to NewDecryptingReaderAt outside test files is flagged.
// Suppress with //shield:noauthread <reason> on the call line or the
// enclosing function's doc comment, stating why this read may legitimately
// bypass authentication.
package authread

import (
	"go/ast"

	"shield/internal/vet/analysis"
	"shield/internal/vet/vetutil"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "authread",
	Doc:  "unauthenticated (v1 CTR) block reads are confined to annotated compatibility sites",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pass.InTestFile(call.Pos()) {
				return false
			}
			fn := vetutil.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Name() != "NewDecryptingReaderAt" {
				return true
			}
			pass.Reportf(call.Pos(),
				"NewDecryptingReaderAt reads without authentication (CTR: tampered ciphertext decrypts to silently wrong bytes): use the sealed v2 reader, or annotate //shield:noauthread <reason> if this site must accept legacy v1 files")
			return true
		})
	}
	return nil
}
