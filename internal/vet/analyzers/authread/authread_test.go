package authread_test

import (
	"testing"

	"shield/internal/vet/analyzers/authread"
	"shield/internal/vet/vettest"
)

func TestAuthRead(t *testing.T) {
	vettest.Run(t, "testdata", authread.Analyzer, "a")
}
