// Package a exercises the authread analyzer: calls to the unauthenticated
// v1 CTR reader are flagged unless annotated with a justification; the
// sealed v2 reader is always fine.
package a

// DEK models crypt.DEK.
type DEK [16]byte

// File models vfs.RandomAccessFile.
type File interface {
	ReadAt(p []byte, off int64) (int, error)
	Size() (int64, error)
	Close() error
}

// Reader is an opaque handle.
type Reader struct{}

// NewDecryptingReaderAt models the unauthenticated crypt v1 reader.
func NewDecryptingReaderAt(f File, key DEK, iv [16]byte, headerLen int64) (*Reader, error) {
	return &Reader{}, nil
}

// NewSealedReaderAt models the authenticated crypt v2 reader.
func NewSealedReaderAt(f File, key DEK, headerLen int64) (*Reader, error) {
	return &Reader{}, nil
}

func unauthenticatedRead(f File, key DEK, iv [16]byte) (*Reader, error) {
	return NewDecryptingReaderAt(f, key, iv, 0) // want `NewDecryptingReaderAt reads without authentication`
}

func sealedReadIsFine(f File, key DEK) (*Reader, error) {
	return NewSealedReaderAt(f, key, 0)
}

func suppressedWithReason(f File, key DEK, iv [16]byte) (*Reader, error) {
	//shield:noauthread format v1 compatibility: files written before sealing existed
	return NewDecryptingReaderAt(f, key, iv, 0)
}

func bareDirectiveDoesNotSuppress(f File, key DEK, iv [16]byte) (*Reader, error) {
	//shield:noauthread
	return NewDecryptingReaderAt(f, key, iv, 0) // want `NewDecryptingReaderAt reads without authentication`
}
