// Package all registers the full shield-vet analyzer suite in the order the
// invariants were learned: encryption boundary, crash durability, key
// hygiene, tail latency, error routing, authenticated reads, and the
// concurrency/crypto-misuse set (lock ordering, atomics discipline,
// goroutine accounting, nonce binding).
package all

import (
	"shield/internal/vet/analysis"
	"shield/internal/vet/analyzers/atomics"
	"shield/internal/vet/analyzers/authread"
	"shield/internal/vet/analyzers/errclass"
	"shield/internal/vet/analyzers/goroleak"
	"shield/internal/vet/analyzers/keyhygiene"
	"shield/internal/vet/analyzers/lockio"
	"shield/internal/vet/analyzers/lockorder"
	"shield/internal/vet/analyzers/nofs"
	"shield/internal/vet/analyzers/noncebound"
	"shield/internal/vet/analyzers/syncdir"
)

// Analyzers is the complete suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	nofs.Analyzer,
	syncdir.Analyzer,
	keyhygiene.Analyzer,
	lockio.Analyzer,
	errclass.Analyzer,
	authread.Analyzer,
	lockorder.Analyzer,
	atomics.Analyzer,
	goroleak.Analyzer,
	noncebound.Analyzer,
}
