// Package nofs forbids direct os / io/ioutil file APIs outside the vfs
// package.
//
// Invariant: every file the engine touches goes through vfs.FS, because that
// seam is where encryption (encfs, the SHIELD per-file wrapper), fault
// injection, crash simulation, and I/O accounting interpose. A naked os.Open
// or os.WriteFile is a path where plaintext can reach disk around the
// encrypting layer — the exact host-side failure mode SHIELD exists to
// prevent — and a path the crash/fault harnesses can never exercise.
//
// Exempt: the vfs package itself (its OSFS backend is the one legitimate os
// user), _test.go files, and sites annotated //shield:nofs <reason> (e.g.
// benchmark scratch-directory setup that precedes mounting any FS).
package nofs

import (
	"go/ast"

	"shield/internal/vet/analysis"
	"shield/internal/vet/vetutil"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "nofs",
	Doc:  "forbid direct os/ioutil file APIs outside internal/vfs so encryption and fault wrappers always interpose",
	Run:  run,
}

// banned lists the os functions that create, open, mutate, or stat files and
// directories. Process-level APIs (os.Exit, os.Args, os.Stdout, os.Signal,
// os.Getenv) are fine: they do not touch the data path.
var banned = map[string]bool{
	"Create": true, "CreateTemp": true, "Open": true, "OpenFile": true,
	"NewFile": true, "ReadFile": true, "WriteFile": true, "ReadDir": true,
	"Remove": true, "RemoveAll": true, "Rename": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"Truncate": true, "Link": true, "Symlink": true, "Chmod": true,
	"Chtimes": true, "Stat": true, "Lstat": true,
}

func run(pass *analysis.Pass) error {
	if vetutil.PathIs(pass.Pkg.Path(), "vfs") {
		return nil // the OSFS backend lives here
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pass.InTestFile(call.Pos()) {
				return false
			}
			fn := vetutil.Callee(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			switch vetutil.PkgPath(fn) {
			case "os":
				if banned[fn.Name()] {
					pass.Reportf(call.Pos(),
						"direct os.%s bypasses the vfs seam (encryption, fault injection, crash simulation); use a vfs.FS, or annotate //shield:nofs <reason>",
						fn.Name())
				}
			case "io/ioutil":
				pass.Reportf(call.Pos(),
					"io/ioutil.%s bypasses the vfs seam; use a vfs.FS, or annotate //shield:nofs <reason>",
					fn.Name())
			}
			return true
		})
	}
	return nil
}
