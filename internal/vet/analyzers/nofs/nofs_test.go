package nofs_test

import (
	"testing"

	"shield/internal/vet/analyzers/nofs"
	"shield/internal/vet/vettest"
)

func TestNoFS(t *testing.T) {
	vettest.Run(t, "testdata", nofs.Analyzer, "a", "vfs")
}
