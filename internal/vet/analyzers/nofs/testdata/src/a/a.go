// Package a exercises the nofs analyzer: direct os and io/ioutil file calls
// are flagged, process-level os APIs are not, an annotated site with a
// justification is suppressed, and a bare annotation is not.
package a

import (
	"io/ioutil"
	"os"
)

func violations() {
	os.Create("x")          // want `direct os\.Create bypasses the vfs seam`
	os.ReadFile("x")        // want `direct os\.ReadFile bypasses the vfs seam`
	os.MkdirAll("d", 0o755) // want `direct os\.MkdirAll bypasses the vfs seam`
	os.Rename("a", "b")     // want `direct os\.Rename bypasses the vfs seam`
	ioutil.ReadFile("x")    // want `io/ioutil\.ReadFile bypasses the vfs seam`
}

func processLevelAllowed() {
	os.Getenv("HOME")
	os.Exit(0)
}

func suppressedWithReason() {
	os.Remove("x") //shield:nofs scratch path created before any FS is mounted
}

func bareDirectiveDoesNotSuppress() {
	//shield:nofs
	os.Remove("x") // want `direct os\.Remove bypasses the vfs seam`
}
