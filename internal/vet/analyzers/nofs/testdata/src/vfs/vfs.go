// Package vfs is exempt from nofs: the OSFS backend is the one legitimate
// direct user of the os file APIs.
package vfs

import "os"

// Open is a direct os call, allowed only here.
func Open(path string) (*os.File, error) { return os.Open(path) }

// WriteFile is a direct os call, allowed only here.
func WriteFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }
