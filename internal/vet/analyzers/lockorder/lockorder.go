// Package lockorder builds a per-package lock-acquisition graph and reports
// cycles — the static shadow of the deadlock the race detector can only find
// if the schedule cooperates.
//
// A lock is identified by where it lives, not which instance is locked:
//   - a struct-field mutex is "Type.field" (DB.mu, shard.mu);
//   - a package-level mutex var is "pkg.name";
//   - a function-local mutex is "local name" (it can only participate in
//     intra-function edges).
//
// An edge A → B is recorded when B is acquired while A is held:
//   - intra-function: B.Lock()/B.RLock() between A.Lock() and its matching
//     positional unlock (or to the end of the function when the unlock is
//     deferred);
//   - one call level deep: a call to a same-package function g inside A's
//     critical section contributes A → L for every lock L that g itself
//     acquires. Deeper nesting is out of scope — the repo's convention is
//     that lock-holding helpers are *Locked-suffixed and acquire nothing.
//
// Findings:
//   - a cycle in the graph (A → B somewhere, B → A somewhere else) is
//     reported at every acquisition edge on the cycle, so both sites show up
//     in review;
//   - re-acquiring the same lock expression while it is held (directly or
//     via a one-level callee) is reported as a self-deadlock — sync.Mutex is
//     not reentrant, and a recursive RLock deadlocks against a queued
//     writer.
//
// Function literals are their own scopes: a closure built inside a critical
// section runs when it is *called*, not where it is written, so its lock
// events neither extend the enclosing region nor count as nested
// acquisitions (the iterator-onClose pattern — capture d.mu.Lock in a
// cleanup closure while holding d.mu — is legal). Each literal's body is
// analyzed independently. Likewise, a callee that *releases* the caller's
// lock before re-acquiring it (the boundary hand-off pattern) is simulated
// event-by-event, not flagged as a blind re-acquisition.
//
// Two instances of the same type locked in sequence (hand-over-hand) share
// an identity; if a design genuinely orders instances dynamically, annotate
// the site with //shield:nolockorder <reason>.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"shield/internal/vet/analysis"
	"shield/internal/vet/vetutil"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "no lock-order cycles or recursive acquisitions in the per-package mutex-acquisition graph",
	Run:  run,
}

// acq is one Lock/RLock/Unlock/RUnlock event inside a function.
type acq struct {
	pos      token.Pos
	expr     string // printed receiver expression, e.g. "d.mu"
	id       string // lock identity, e.g. "DB.mu"
	op       string
	deferred bool
}

// edge is one "B acquired while A held" observation.
type edge struct {
	from, to string
	pos      token.Pos
	via      string // "" for a direct acquisition, else the callee name
}

func run(pass *analysis.Pass) error {
	// Index this package's function bodies so call edges can be followed one
	// level. Function literals are separate bodies: a closure's lock events
	// happen when the closure runs, not where it is defined.
	decls := map[*types.Func]*ast.FuncDecl{}
	var bodies []*ast.BlockStmt
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			bodies = append(bodies, fd.Body)
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					bodies = append(bodies, lit.Body)
				}
				return true
			})
		}
	}

	acqsOf := map[*ast.BlockStmt][]acq{}
	for _, b := range bodies {
		acqsOf[b] = lockEvents(pass, b)
	}

	var edges []edge
	for _, b := range bodies {
		edges = append(edges, funcEdges(pass, b, acqsOf[b], decls, acqsOf)...)
	}

	// Self-deadlocks were reported during edge collection; what remains is
	// cycle detection over the identity graph.
	reportCycles(pass, edges)
	return nil
}

// lockEvents extracts the lock events of one function body, in source order.
// Nested function literals are skipped — they are separate bodies.
func lockEvents(pass *analysis.Pass, body *ast.BlockStmt) []acq {
	var events []acq
	ast.Inspect(body, func(n ast.Node) bool {
		deferred := false
		var call *ast.CallExpr
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			call = n.Call
			deferred = true
		case *ast.CallExpr:
			call = n
		default:
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		op := sel.Sel.Name
		switch op {
		case "Lock", "RLock", "Unlock", "RUnlock":
		default:
			return true
		}
		fn := vetutil.Callee(pass.TypesInfo, call)
		if fn == nil || vetutil.PkgPath(fn) != "sync" {
			return true
		}
		events = append(events, acq{
			pos:      call.Pos(),
			expr:     types.ExprString(sel.X),
			id:       lockIdentity(pass, sel.X),
			op:       op,
			deferred: deferred,
		})
		return !deferred
	})
	return events
}

// lockIdentity names the lock behind a Lock-call receiver expression.
func lockIdentity(pass *analysis.Pass, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok {
			if owner := namedOf(sel.Recv()); owner != "" {
				return owner + "." + e.Sel.Name
			}
		}
		// Package-qualified var: pkg.mu.
		if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
			return v.Pkg().Name() + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Name() + "." + v.Name()
			}
			return "local " + v.Name()
		}
	}
	return types.ExprString(e)
}

func namedOf(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt.Obj().Name()
		default:
			return ""
		}
	}
}

// region is one held-lock span: from the acquisition to its matching
// positional unlock, or to the end of the body when the unlock is deferred
// or absent.
type region struct {
	a          acq
	start, end token.Pos
}

func heldRegions(body *ast.BlockStmt, events []acq) []region {
	var regions []region
	for _, e := range events {
		if e.deferred || (e.op != "Lock" && e.op != "RLock") {
			continue
		}
		end := body.End()
		unlock := "Unlock"
		if e.op == "RLock" {
			unlock = "RUnlock"
		}
		for _, u := range events {
			if u.op == unlock && !u.deferred && u.expr == e.expr && u.pos > e.pos && u.pos < end {
				end = u.pos
			}
		}
		regions = append(regions, region{a: e, start: e.pos, end: end})
	}
	return regions
}

// funcEdges computes the acquisition edges contributed by one function body,
// reporting self-deadlocks on the spot.
func funcEdges(pass *analysis.Pass, body *ast.BlockStmt, events []acq,
	decls map[*types.Func]*ast.FuncDecl, acqsOf map[*ast.BlockStmt][]acq) []edge {

	regions := heldRegions(body, events)
	if len(regions) == 0 {
		return nil
	}
	var edges []edge

	// Direct nested acquisitions.
	for _, e := range events {
		if e.op != "Lock" && e.op != "RLock" {
			continue
		}
		for _, r := range regions {
			if e.pos <= r.start || e.pos >= r.end || e.pos == r.a.pos {
				continue
			}
			if e.id == r.a.id {
				if e.expr == r.a.expr {
					pass.Reportf(e.pos,
						"%s of %s while %s is already held: sync mutexes are not reentrant, this self-deadlocks (held since %s)",
						e.op, e.expr, e.expr, line(pass, r.a.pos))
				}
				continue // same identity, different instance: unorderable statically
			}
			edges = append(edges, edge{from: r.a.id, to: e.id, pos: e.pos})
		}
	}

	// One call level: a same-package callee's own acquisitions happen with
	// the caller's locks held. The callee's events are replayed in source
	// order so a hand-off — the callee releasing the caller's lock before
	// re-acquiring it — is not mistaken for a blind re-acquisition, and
	// locks taken after the release contribute no edge.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := vetutil.Callee(pass.TypesInfo, call)
		if fn == nil || vetutil.PkgPath(fn) == "sync" {
			return true
		}
		callee, ok := decls[fn]
		if !ok {
			return true
		}
		for _, r := range regions {
			if call.Pos() <= r.start || call.Pos() >= r.end {
				continue
			}
			held := true
			for _, e := range acqsOf[callee.Body] {
				switch e.op {
				case "Unlock", "RUnlock":
					if !e.deferred && e.id == r.a.id {
						held = false
					}
					continue
				}
				if !held {
					if e.id == r.a.id {
						held = true // hand-off: callee re-took the caller's lock
					}
					continue
				}
				if e.id == r.a.id {
					pass.Reportf(call.Pos(),
						"call to %s while holding %s: %s acquires %s again, which self-deadlocks on the same instance",
						fn.Name(), r.a.expr, fn.Name(), e.expr)
					continue
				}
				edges = append(edges, edge{from: r.a.id, to: e.id, pos: call.Pos(), via: fn.Name()})
			}
		}
		return true
	})
	return edges
}

// reportCycles finds strongly connected components of the lock graph and
// reports every edge inside one.
func reportCycles(pass *analysis.Pass, edges []edge) {
	adj := map[string][]string{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	scc := tarjan(adj)
	comp := map[string]int{}
	for i, c := range scc {
		for _, n := range c {
			comp[n] = i
		}
	}
	reported := map[string]bool{}
	for _, e := range edges {
		ci, ok := comp[e.from]
		if !ok || comp[e.to] != ci || len(scc[ci]) < 2 {
			continue
		}
		cyc := append([]string(nil), scc[ci]...)
		sort.Strings(cyc)
		key := fmt.Sprintf("%d:%s:%s", e.pos, e.from, e.to)
		if reported[key] {
			continue
		}
		reported[key] = true
		via := ""
		if e.via != "" {
			via = " (via call to " + e.via + ")"
		}
		pass.Reportf(e.pos,
			"acquiring %s while holding %s%s completes a lock-order cycle {%s}: another path takes these locks in the opposite order, which can deadlock",
			e.to, e.from, via, strings.Join(cyc, ", "))
	}
}

// tarjan returns the strongly connected components of adj.
func tarjan(adj map[string][]string) [][]string {
	nodes := make([]string, 0, len(adj))
	seen := map[string]bool{}
	for n, outs := range adj {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
		for _, m := range outs {
			if !seen[m] {
				seen[m] = true
				nodes = append(nodes, m)
			}
		}
	}
	sort.Strings(nodes) // deterministic traversal

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var out [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		outs := append([]string(nil), adj[v]...)
		sort.Strings(outs)
		for _, w := range outs {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for _, n := range nodes {
		if _, ok := index[n]; !ok {
			strongconnect(n)
		}
	}
	return out
}

func line(pass *analysis.Pass, pos token.Pos) string {
	p := pass.Fset.Position(pos)
	return fmt.Sprintf("line %d", p.Line)
}
