package lockorder_test

import (
	"testing"

	"shield/internal/vet/analyzers/lockorder"
	"shield/internal/vet/vettest"
)

func TestLockOrder(t *testing.T) {
	vettest.Run(t, "testdata", lockorder.Analyzer, "a")
}
