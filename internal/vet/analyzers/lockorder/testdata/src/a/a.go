// Package a exercises the lockorder analyzer: lock-order cycles across
// functions, one-level call edges, recursive acquisition of the same lock
// expression, and the suppression forms.
package a

import "sync"

type DB struct {
	mu    sync.Mutex
	sched sync.Mutex
}

type Cache struct {
	mu sync.Mutex
}

// --- cycle via two functions taking two struct-field locks in opposite
// order; both closing edges are reported.

func (d *DB) muThenSched() {
	d.mu.Lock()
	d.sched.Lock() // want `lock-order cycle`
	d.sched.Unlock()
	d.mu.Unlock()
}

func (d *DB) schedThenMu() {
	d.sched.Lock()
	defer d.sched.Unlock()
	d.mu.Lock() // want `lock-order cycle`
	d.mu.Unlock()
}

// --- consistent nesting is not a cycle.

type pair struct {
	outer sync.Mutex
	inner sync.Mutex
}

func (p *pair) nestOnce() {
	p.outer.Lock()
	p.inner.Lock()
	p.inner.Unlock()
	p.outer.Unlock()
}

func (p *pair) nestAgain() {
	p.outer.Lock()
	defer p.outer.Unlock()
	p.inner.Lock()
	defer p.inner.Unlock()
}

// --- sequential (non-nested) acquisitions create no edge.

func (d *DB) sequential() {
	d.mu.Lock()
	d.mu.Unlock()
	d.sched.Lock()
	d.sched.Unlock()
}

// --- recursive acquisition of the same expression self-deadlocks.

func (c *Cache) relock() {
	c.mu.Lock()
	c.mu.Lock() // want `self-deadlocks`
	c.mu.Unlock()
	c.mu.Unlock()
}

// recursive RLock is included: it deadlocks against a queued writer.
type R struct {
	mu sync.RWMutex
}

func (r *R) rrlock() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.mu.RLock() // want `self-deadlocks`
	r.mu.RUnlock()
}

// --- one call level: callee acquisitions count as held-lock edges.

type Reg struct {
	mu    sync.Mutex
	cache *Cache
}

func (g *Reg) lockCache() {
	g.cache.mu.Lock()
	g.cache.mu.Unlock()
}

func (g *Reg) regThenCacheViaCall() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.lockCache() // want `lock-order cycle`
}

func (g *Reg) cacheThenReg(c *Cache) {
	c.mu.Lock()
	g.mu.Lock() // want `lock-order cycle`
	g.mu.Unlock()
	c.mu.Unlock()
}

// calling a helper that re-locks the held lock is the classic wrapped
// self-deadlock.
func (d *DB) lockedHelper() {
	d.mu.Lock()
	d.mu.Unlock()
}

func (d *DB) callsHelperUnderMu() {
	d.mu.Lock()
	d.lockedHelper() // want `self-deadlocks`
	d.mu.Unlock()
}

// calling the helper after unlocking is fine.
func (d *DB) callsHelperOutside() {
	d.mu.Lock()
	d.mu.Unlock()
	d.lockedHelper()
}

// --- package-level mutex identity.

var gmu sync.Mutex

type T struct {
	mu sync.Mutex
}

func (t *T) globalThenField() {
	gmu.Lock()
	t.mu.Lock() // want `lock-order cycle`
	t.mu.Unlock()
	gmu.Unlock()
}

func (t *T) fieldThenGlobal() {
	t.mu.Lock()
	gmu.Lock() // want `lock-order cycle`
	gmu.Unlock()
	t.mu.Unlock()
}

// --- a closure built under the lock runs when called, not where written:
// its lock events are its own scope, not nested acquisitions.

type iter struct {
	onClose func()
}

func (d *DB) newIterOnClose() *iter {
	d.mu.Lock()
	defer d.mu.Unlock()
	return &iter{onClose: func() {
		d.mu.Lock()
		d.mu.Unlock()
	}}
}

// the closure body is still analyzed on its own.
func (d *DB) badClosure() func() {
	return func() {
		d.mu.Lock()
		d.mu.Lock() // want `self-deadlocks`
		d.mu.Unlock()
		d.mu.Unlock()
	}
}

// --- hand-off: a callee that releases the caller's lock before re-taking
// it is not a re-acquisition, and locks taken in the released window
// contribute no edge (so sideThenMu below closes no cycle).

type H struct {
	mu   sync.Mutex
	side sync.Mutex
}

func (h *H) handOff() {
	h.mu.Unlock()
	h.side.Lock()
	h.side.Unlock()
	h.mu.Lock()
}

func (h *H) syncWithHandOff() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.handOff()
}

func (h *H) sideThenMu() {
	h.side.Lock()
	h.mu.Lock()
	h.mu.Unlock()
	h.side.Unlock()
}

// --- suppression forms.

type S struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *S) abOrder() {
	s.a.Lock()
	//shield:nolockorder audited: b-holders never take a; the cycle is an artifact of identity merging
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}

func (s *S) baOrder() {
	s.b.Lock()
	s.a.Lock() //shield:nolockorder same audit as abOrder
	s.a.Unlock()
	s.b.Unlock()
}

// a bare directive (no reason) does not suppress.
func (s *S) bareDirective() {
	s.a.Lock()
	//shield:nolockorder
	s.a.Lock() // want `self-deadlocks`
	s.a.Unlock()
	s.a.Unlock()
}
