package lockio_test

import (
	"testing"

	"shield/internal/vet/analyzers/lockio"
	"shield/internal/vet/vettest"
)

func TestLockIO(t *testing.T) {
	vettest.Run(t, "testdata", lockio.Analyzer, "a")
}
