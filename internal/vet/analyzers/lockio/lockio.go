// Package lockio flags blocking I/O performed while holding a sync.Mutex or
// sync.RWMutex — the stall pattern that kills tail latency once storage is
// disaggregated and a "file operation" is a network round trip.
//
// What counts as blocking I/O:
//   - any method call on an FS-shaped value (method set includes SyncDir) or
//     on file handles (Sync+Write writers, ReadAt+Size readers);
//   - vfs.ReadFile / vfs.WriteFile helpers;
//   - anything in package net, and methods on net types (Conn deadlines,
//     dials);
//   - KDS-shaped calls (method set includes FetchDEK) — a KDS round trip is
//     measured in milliseconds;
//   - time.Sleep and netretry.Sleep — deliberate waiting under a lock is
//     the same stall with better intentions.
//
// Two region forms are checked, both intra-function:
//   - between x.Lock()/x.RLock() and the matching positional x.Unlock()
//     (or to the end of the function when the unlock is deferred);
//   - the entire body of a function whose name contains "Locked" — this
//     repo's convention for "caller holds the lock" (saveLocked,
//     writeSnapshotLocked, ...), which is how lock-held I/O hides from a
//     purely intra-function scan.
//
// Self-calls are exempt from the shape-based classifications: a method
// invoking another method on its own receiver is not a round trip to a
// remote FS or KDS — the shape heuristic infers I/O from a value's
// interface, which is wrong when the value is the very object whose lock is
// held (Store.checkServer under Store.mu is a map lookup, not a KDS fetch).
// Lock-held helpers doing real I/O are still caught by the *Locked*
// convention and by the package-based classifiers, which stay unconditional.
//
// Some designs hold a lock across I/O on purpose: a WAL append mutex is the
// commit-order definition; a network client may serialize requests over one
// connection with a mutex as the queue. Those functions carry
// //shield:nolockio <reason> in their doc comment.
package lockio

import (
	"go/ast"
	"go/token"
	"go/types"

	"shield/internal/vet/analysis"
	"shield/internal/vet/vetutil"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "lockio",
	Doc:  "no blocking I/O (vfs, net, KDS/dstore calls, sleeps) while holding a sync.Mutex/RWMutex",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

type lockEvent struct {
	pos      token.Pos
	expr     string // printed receiver expression, e.g. "c.mu"
	op       string // Lock, RLock, Unlock, RUnlock
	deferred bool
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var events []lockEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		deferred := false
		var call *ast.CallExpr
		switch n := n.(type) {
		case *ast.DeferStmt:
			call = n.Call
			deferred = true
		case *ast.CallExpr:
			call = n
		default:
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		op := sel.Sel.Name
		switch op {
		case "Lock", "RLock", "Unlock", "RUnlock":
		default:
			return true
		}
		fn := vetutil.Callee(pass.TypesInfo, call)
		if fn == nil || vetutil.PkgPath(fn) != "sync" {
			return true
		}
		events = append(events, lockEvent{call.Pos(), types.ExprString(sel.X), op, deferred})
		return !deferred // a defer's call args were already handled
	})

	type region struct{ start, end token.Pos }
	var regions []region
	for _, e := range events {
		if e.deferred || (e.op != "Lock" && e.op != "RLock") {
			continue
		}
		end := fd.Body.End()
		unlock := "Unlock"
		if e.op == "RLock" {
			unlock = "RUnlock"
		}
		for _, u := range events {
			if u.op == unlock && !u.deferred && u.expr == e.expr && u.pos > e.pos && u.pos < end {
				end = u.pos
			}
		}
		regions = append(regions, region{e.pos, end})
	}
	// Convention: *Locked* functions run with the caller's lock held.
	if fd.Name != nil && containsLocked(fd.Name.Name) {
		regions = append(regions, region{fd.Body.Pos(), fd.Body.End()})
	}
	if len(regions) == 0 {
		return
	}

	var recvObj types.Object
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		recvObj = pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		inRegion := false
		for _, r := range regions {
			if call.Pos() > r.start && call.Pos() < r.end {
				inRegion = true
				break
			}
		}
		if !inRegion {
			return true
		}
		if what, ok := blockingIO(pass, call, recvObj); ok {
			pass.Reportf(call.Pos(),
				"%s while holding a mutex: blocking I/O under a lock serializes every other holder behind storage/network latency; move the I/O outside the critical section or annotate //shield:nolockio <reason>",
				what)
		}
		return true
	})
}

func containsLocked(name string) bool {
	for i := 0; i+6 <= len(name); i++ {
		if name[i:i+6] == "Locked" {
			return true
		}
	}
	return false
}

// blockingIO classifies a call as blocking I/O. recvObj, when non-nil, is
// the enclosing method's receiver variable: calls on it are exempt from the
// shape-based classifications (see the package doc).
func blockingIO(pass *analysis.Pass, call *ast.CallExpr, recvObj types.Object) (string, bool) {
	fn := vetutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	pkg := vetutil.PkgPath(fn)
	name := fn.Name()

	switch {
	case pkg == "time" && name == "Sleep":
		return "time.Sleep", true
	case vetutil.PathIs(pkg, "netretry") && name == "Sleep":
		return "netretry.Sleep", true
	case pkg == "net":
		return "net." + name, true
	case vetutil.PathIs(pkg, "vfs") && (name == "ReadFile" || name == "WriteFile"):
		return "vfs." + name, true
	}

	recv := vetutil.ReceiverType(pass.TypesInfo, call)
	if recv == nil {
		return "", false
	}
	if recvObj != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recvObj {
				return "", false // self-call: not a remote round trip
			}
		}
	}
	if named, ok := deref(recv).(*types.Named); ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "net" {
		return "net." + named.Obj().Name() + "." + name, true
	}
	switch {
	case vetutil.HasMethod(recv, "SyncDir"):
		return "FS." + name, true
	case vetutil.HasMethod(recv, "FetchDEK"):
		return "KDS." + name, true
	case vetutil.HasMethod(recv, "Sync") && vetutil.HasMethod(recv, "Write"):
		return "file." + name, true
	case vetutil.HasMethod(recv, "ReadAt") && vetutil.HasMethod(recv, "Size"):
		return "file." + name, true
	}
	return "", false
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
