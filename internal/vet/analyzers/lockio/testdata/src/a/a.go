// Package a exercises the lockio analyzer: blocking I/O (FS-shaped, KDS,
// file handles, sleeps) between Lock and Unlock is flagged, I/O outside the
// critical section is not, *Locked functions are treated as lock-held, and
// both annotation forms suppress only with a justification.
package a

import (
	"sync"
	"time"
)

// File is the file-handle shape (Sync+Write / ReadAt+Size).
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	ReadAt(p []byte, off int64) (int, error)
	Size() int64
	Close() error
}

// FS is the FS shape (method set includes SyncDir).
type FS interface {
	Create(name string) (File, error)
	Rename(o, n string) error
	SyncDir(dir string) error
	Remove(name string) error
}

// KDS is the key-service shape (method set includes FetchDEK).
type KDS interface {
	FetchDEK(id string) ([]byte, error)
}

type cache struct {
	mu  sync.Mutex
	fs  FS
	kds KDS
	n   int
}

func (c *cache) deferredUnlockHoldsToEnd() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fs.Rename("a", "b")        // want `FS\.Rename while holding a mutex`
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding a mutex`
}

func (c *cache) kdsUnderLock(id string) {
	c.mu.Lock()
	c.kds.FetchDEK(id) // want `KDS\.FetchDEK while holding a mutex`
	c.mu.Unlock()
}

func (c *cache) fileUnderLock(f File) {
	c.mu.Lock()
	f.Sync() // want `file\.Sync while holding a mutex`
	c.mu.Unlock()
}

func (c *cache) ioAfterUnlockIsFine() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.fs.Rename("a", "b")
	c.fs.SyncDir(".")
}

// saveLocked runs with the caller's lock held (naming convention), so its
// whole body is a critical section.
func (c *cache) saveLocked() {
	c.fs.Create("snapshot") // want `FS\.Create while holding a mutex`
}

// flushLocked appends under the WAL mutex on purpose.
//
//shield:nolockio the WAL append mutex defines commit order; I/O under it is the design
func (c *cache) flushLocked(f File) {
	f.Sync()
}

func (c *cache) inlineAnnotation() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fs.Remove("x") //shield:nolockio removal is rare and bounded; the lock prevents a double-delete race
}

func (c *cache) bareDirectiveDoesNotSuppress() {
	c.mu.Lock()
	defer c.mu.Unlock()
	//shield:nolockio
	c.fs.Remove("x") // want `FS\.Remove while holding a mutex`
}

// svc is itself KDS-shaped, so shape classification would otherwise treat
// every method call on it as a remote round trip.
type svc struct {
	mu sync.Mutex
}

func (s *svc) FetchDEK(id string) ([]byte, error) { return nil, nil }

func (s *svc) check() error { return nil }

func (s *svc) selfCallUnderLockIsFine(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.check()
}

func (s *svc) peerCallStillFlagged(peer *svc, id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	peer.FetchDEK(id) // want `KDS\.FetchDEK while holding a mutex`
}

// sched mirrors the background-job scheduler's shapes: plans are claimed
// and released under the mutex, the compaction I/O runs between the two
// critical sections, and contended claims park on a condition variable.
type sched struct {
	mu   sync.Mutex
	cond *sync.Cond
	fs   FS
	busy map[string]bool
}

func (s *sched) claimRunRelease() {
	s.mu.Lock()
	s.busy["plan"] = true
	s.mu.Unlock()
	s.fs.Create("out") // between the claim and the release: fine
	s.mu.Lock()
	delete(s.busy, "plan")
	s.mu.Unlock()
}

func (s *sched) condWaitClaimLoop() {
	s.mu.Lock()
	for s.busy["plan"] {
		s.cond.Wait() // parks with the mutex released: not blocking I/O
	}
	s.busy["plan"] = true
	s.mu.Unlock()
}

func (s *sched) spawnUnderLockStillCounts() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.fs.Create("out") // want `FS\.Create while holding a mutex`
	}()
}

// commitPipeline mirrors the engine's group-commit leader/follower shape:
// followers are queued and detached under the pipeline mutex, the leader
// performs the WAL append/fsync with the mutex RELEASED, and only the
// handoff (promoting the queue head, retiring leadership) re-enters the
// critical section. Doing the sync inside the queue mutex would serialize
// arrivals behind device latency and is exactly what lockio must flag.
type commitWaiter struct {
	done chan struct{}
	lead chan struct{}
}

type commitPipeline struct {
	mu      sync.Mutex
	queue   []*commitWaiter
	leading bool
	wal     File
}

func (p *commitPipeline) leaderDetachCommitHandoff(w *commitWaiter) {
	p.mu.Lock()
	group := append([]*commitWaiter{w}, p.queue...)
	p.queue = p.queue[:0]
	p.mu.Unlock()
	p.wal.Sync() // leader I/O with the queue mutex released: fine
	for _, g := range group {
		close(g.done)
	}
	p.mu.Lock()
	if len(p.queue) == 0 {
		p.leading = false
		p.mu.Unlock()
		return
	}
	next := p.queue[0]
	p.queue = p.queue[1:]
	p.mu.Unlock()
	close(next.lead)
}

func (p *commitPipeline) syncUnderQueueMutex() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wal.Sync() // want `file\.Sync while holding a mutex`
}

type rcache struct {
	mu sync.RWMutex
	fs FS
}

func (r *rcache) readLockCountsToo() {
	r.mu.RLock()
	r.fs.Remove("x") // want `FS\.Remove while holding a mutex`
	r.mu.RUnlock()
	r.fs.Remove("y")
}
