// Package goroleak flags unaccounted goroutines launched from functions
// that can fail: a `go` statement inside a function with an error result
// must be joined, cancellable, or registered — otherwise an early error
// return strands the goroutine, which is exactly how the flush-waiter wedge
// happened (a waiter goroutine parked forever on a channel nobody would
// ever close).
//
// A goroutine counts as accounted when any of these signals is present:
//
//   - a sync.WaitGroup is involved: the goroutine body calls Done (or any
//     WaitGroup method), or the enclosing function calls Add before the
//     launch — directly, or one call level down (a registration helper
//     like track() that performs the Add under its own lock);
//   - the body can be cancelled: it references a context.Context, or it
//     receives from a channel declared outside the body (a done/quit
//     channel);
//   - the body joins back: it sends on or closes a captured channel — the
//     result has somewhere to go — or the goroutine call is passed a
//     channel or context argument;
//   - a `go` of a named same-package function is checked against that
//     function's body, one level deep.
//
// The check is a necessary-condition approximation: it cannot prove the
// join happens on *every* return path, but a goroutine with no signal at
// all has no path that reclaims it. Deliberate fire-and-forget launches
// (self-terminating workers) carry //shield:nogoroleak <reason>.
package goroleak

import (
	"go/ast"
	"go/types"

	"shield/internal/vet/analysis"
	"shield/internal/vet/vetutil"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc:  "goroutines launched in error-returning functions must be joined, cancellable, or WaitGroup-registered",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Index same-package function bodies for one-level `go namedFunc()`.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			if !hasErrorResult(pass, fd) {
				continue
			}
			checkFunc(pass, fd, decls)
		}
	}
	return nil
}

func hasErrorResult(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, r := range fd.Type.Results.List {
		if t := pass.TypesInfo.Types[r.Type].Type; t != nil && vetutil.IsErrorType(t) {
			return true
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if accounted(pass, fd, g, decls) {
			return true
		}
		pass.Reportf(g.Pos(),
			"goroutine launched in error-returning %s with no join, cancellation, or WaitGroup registration: an early error return strands it; account for it or annotate //shield:nogoroleak <reason>",
			fd.Name.Name)
		return true
	})
}

func accounted(pass *analysis.Pass, fd *ast.FuncDecl, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) bool {
	// A WaitGroup.Add before the launch accounts for any goroutine shape:
	// wg.Add(1); go worker(). The Add may be one call level down — a
	// registration helper that Adds under its own lock (the track() shape).
	if addBefore(pass, fd, g, decls) {
		return true
	}
	// A channel or context handed to the goroutine is a cancellation/join
	// handle regardless of what the body looks like.
	for _, arg := range g.Call.Args {
		if t := pass.TypesInfo.Types[arg].Type; isChanOrContext(t) {
			return true
		}
	}
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return bodyAccounted(pass, lit.Body, lit)
	}
	// go namedFunc(...) / go x.method(...): follow one level into a
	// same-package body.
	if fn := vetutil.Callee(pass.TypesInfo, g.Call); fn != nil {
		if callee, ok := decls[fn]; ok {
			return bodyAccounted(pass, callee.Body, nil)
		}
	}
	return false
}

// addBefore reports a WaitGroup.Add call in fd positioned before the launch,
// either directly or inside a same-package callee (one level).
func addBefore(pass *analysis.Pass, fd *ast.FuncDecl, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= g.Pos() {
			return true
		}
		if isWaitGroupCall(pass, call, "Add") {
			found = true
		} else if fn := vetutil.Callee(pass.TypesInfo, call); fn != nil {
			if callee, ok := decls[fn]; ok && callsWaitGroupAdd(pass, callee.Body) {
				found = true
			}
		}
		return !found
	})
	return found
}

// callsWaitGroupAdd reports whether body contains a WaitGroup.Add call.
func callsWaitGroupAdd(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isWaitGroupCall(pass, call, "Add") {
			found = true
		}
		return !found
	})
	return found
}

// bodyAccounted scans a goroutine body for any accounting signal. lit, when
// non-nil, is the enclosing function literal: channel operations only count
// when the channel is captured or a parameter (a channel both created and
// consumed inside the body cannot be observed from outside).
func bodyAccounted(pass *analysis.Pass, body *ast.BlockStmt, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isWaitGroupCall(pass, n, "") {
				found = true
			}
			// close(ch) on an external channel is a completion broadcast.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if externalChan(pass, n.Args[0], body, lit) {
					found = true
				}
			}
		case *ast.UnaryExpr:
			// <-ch: receiving from an external channel means the goroutine
			// can be told to stop (or is consuming a bounded stream).
			if n.Op.String() == "<-" && externalChan(pass, n.X, body, lit) {
				found = true
			}
		case *ast.SendStmt:
			// ch <- v: the result is delivered to a joiner.
			if externalChan(pass, n.Chan, body, lit) {
				found = true
			}
		case *ast.Ident:
			// Any reference to a context.Context (ctx.Done, ctx.Err,
			// passing it on) makes the goroutine cancellable.
			if t := identType(pass, n); isContext(t) {
				found = true
			}
		}
		return !found
	})
	return found
}

// externalChan reports whether e is a channel whose declaration lives
// outside body — a captured done/result channel, a parameter, or a field.
func externalChan(pass *analysis.Pass, e ast.Expr, body *ast.BlockStmt, lit *ast.FuncLit) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return false
	}
	// Fields and non-ident expressions are external by construction.
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return true
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	// Declared inside the goroutine body: internal plumbing, not a join.
	if body.Pos() <= obj.Pos() && obj.Pos() <= body.End() {
		return false
	}
	return true
}

func identType(pass *analysis.Pass, id *ast.Ident) types.Type {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj.Type()
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj.Type()
	}
	return nil
}

func isContext(t types.Type) bool {
	if t == nil {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
	}
	return false
}

func isChanOrContext(t types.Type) bool {
	if t == nil {
		return false
	}
	if isContext(t) {
		return true
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isWaitGroupCall reports a method call on sync.WaitGroup; method filters to
// one name when non-empty.
func isWaitGroupCall(pass *analysis.Pass, call *ast.CallExpr, method string) bool {
	fn := vetutil.Callee(pass.TypesInfo, call)
	if fn == nil || vetutil.PkgPath(fn) != "sync" {
		return false
	}
	if method != "" && fn.Name() != method {
		return false
	}
	recv := vetutil.ReceiverType(pass.TypesInfo, call)
	return vetutil.IsNamed(recv, "WaitGroup")
}
