package goroleak_test

import (
	"testing"

	"shield/internal/vet/analyzers/goroleak"
	"shield/internal/vet/vettest"
)

func TestGoroleak(t *testing.T) {
	vettest.Run(t, "testdata", goroleak.Analyzer, "a")
}
