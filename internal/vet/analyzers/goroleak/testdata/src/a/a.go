// Package a exercises the goroleak analyzer: unaccounted goroutines in
// error-returning functions are flagged; WaitGroup registration, captured
// cancellation channels/contexts, join handshakes, and suppressions are not.
package a

import (
	"context"
	"sync"
)

type engine struct {
	wg   sync.WaitGroup
	quit chan struct{}
}

// --- fire-and-forget in an error-returning function: flagged.

func (e *engine) startBad() error {
	go func() { // want `no join, cancellation, or WaitGroup registration`
		for {
		}
	}()
	return nil
}

// a named-function launch with an unaccounted body is flagged too.
func spin() {
	for {
	}
}

func (e *engine) startNamedBad() error {
	go spin() // want `no join, cancellation, or WaitGroup registration`
	return nil
}

// --- functions without an error result are out of scope.

func (e *engine) startVoid() {
	go func() {
		for {
		}
	}()
}

// --- WaitGroup forms.

func (e *engine) startWG() error {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
	}()
	return nil
}

func (e *engine) worker() {}

func (e *engine) startNamedWG() error {
	e.wg.Add(1)
	go e.worker()
	return nil
}

// the Add may sit one call level down, in a registration helper that
// guards it with its own lock (the connection-track shape).
func (e *engine) register() bool {
	e.wg.Add(1)
	return true
}

func (e *engine) startViaRegister() error {
	if !e.register() {
		return nil
	}
	go func() {
		defer e.wg.Done()
	}()
	return nil
}

// the body calling Done is enough even without a visible Add here.
func (e *engine) doneWorker() {
	defer e.wg.Done()
}

func (e *engine) startNamedDone() error {
	go e.doneWorker()
	return nil
}

// --- cancellation via captured channel or context.

func (e *engine) startQuit() error {
	go func() {
		select {
		case <-e.quit:
			return
		}
	}()
	return nil
}

func (e *engine) startCtx(ctx context.Context) error {
	go func() {
		<-ctx.Done()
	}()
	return nil
}

// passing the context (or a channel) into the goroutine call accounts it.
func pump(ctx context.Context) {}

func (e *engine) startCtxArg(ctx context.Context) error {
	go pump(ctx)
	return nil
}

// --- join handshake: sending the result on a captured channel.

func (e *engine) startJoin() (err error) {
	ch := make(chan error, 1)
	go func() {
		ch <- nil
	}()
	return <-ch
}

// closing a captured channel is a completion broadcast.
func (e *engine) startClose() error {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
	return nil
}

// a channel created *inside* the goroutine is internal plumbing, not a join.
func (e *engine) startInternalChan() error {
	go func() { // want `no join, cancellation, or WaitGroup registration`
		in := make(chan int, 1)
		in <- 1
		<-in
	}()
	return nil
}

// --- commit-pipeline leader/follower shapes: a follower goroutine parks on
// the waiter's channels (done = group committed, lead = promoted to
// leader), both closed by the leader, so the launch is accounted; a leader
// spawning a detached helper to do the commit work is not.

type commitWaiter struct {
	done chan struct{}
	lead chan struct{}
}

func (e *engine) startFollower(w *commitWaiter) error {
	go func() {
		select {
		case <-w.done:
		case <-w.lead:
		}
	}()
	return nil
}

func (e *engine) startDetachedLeader(w *commitWaiter) error {
	go func() { // want `no join, cancellation, or WaitGroup registration`
		for {
		}
	}()
	close(w.done)
	return nil
}

// --- suppression with a reason; a bare directive does not suppress.

func (e *engine) startDetached() error {
	//shield:nogoroleak self-terminating: the loop exits when the pool is drained, holding no references
	go func() {
		for {
		}
	}()
	return nil
}

func (e *engine) startDetachedBare() error {
	//shield:nogoroleak
	go func() { // want `no join, cancellation, or WaitGroup registration`
		for {
		}
	}()
	return nil
}
