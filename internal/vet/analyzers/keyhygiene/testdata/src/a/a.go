// Package a exercises the keyhygiene analyzer: key material must not reach
// fmt/log sinks or json-tagged fields, and derived key bytes must be
// zeroized or returned.
package a

import (
	"encoding/hex"
	"fmt"
	"log"
)

// DEK models crypt.DEK.
type DEK [16]byte

// Hex leaks the raw key on purpose; only sinks of it are flagged.
func (d DEK) Hex() string { return hex.EncodeToString(d[:]) }

// PBKDF2SHA256 models the crypt deriver.
func PBKDF2SHA256(passkey, salt []byte, iters, keyLen int) []byte { return make([]byte, keyLen) }

// HKDFSHA256 models the crypt deriver.
func HKDFSHA256(ikm, salt, info []byte, n int) []byte { return make([]byte, n) }

// DEKFromBytes models crypt.DEKFromBytes.
func DEKFromBytes(b []byte) (DEK, error) {
	var d DEK
	copy(d[:], b)
	return d, nil
}

// Zeroize models crypt.Zeroize.
func Zeroize(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

func use(b []byte) {}

// --- rule 1: sinks ---

func logsKey(d DEK) {
	fmt.Printf("dek=%v\n", d)        // want `DEK value flows into fmt\.Printf`
	fmt.Println(d.Hex())             // want `DEK\.Hex\(\) flows into fmt\.Println`
	log.Printf("key bytes %x", d[:]) // want `DEK bytes flows into log\.Printf`
}

func logsKeyNamedBytes(masterKey []byte) {
	fmt.Sprintf("%x", masterKey) // want `key bytes masterKey flows into fmt\.Sprintf`
}

func logsEncodedKey(d DEK) {
	log.Println(hex.EncodeToString(d[:])) // want `hex/base64 of DEK bytes flows into log\.Println`
}

func benignLogging(id string, refs int) {
	fmt.Printf("dek id=%s refs=%d\n", id, refs) // identifiers about keys are fine; bytes are not
}

func suppressedSink(d DEK) {
	//shield:nokeyhygiene test vector printed by the KAT harness, key is public
	fmt.Println(d.Hex())
}

// --- rule 2: serialization ---

type wireMsg struct {
	ID     string `json:"id"`
	DEKHex string `json:"dek_hex"`
}

type record struct {
	Payload []byte // unserialized: no json tag
}

func marshalsKey(d DEK) wireMsg {
	return wireMsg{
		ID:     "k1",
		DEKHex: hex.EncodeToString(d[:]), // want `hex/base64 of DEK bytes assigned to serialized field DEKHex`
	}
}

func marshalAnnotated(d DEK) wireMsg {
	return wireMsg{
		ID:     "k1",
		DEKHex: hex.EncodeToString(d[:]), //shield:nokeyhygiene channel is authenticated and encrypted per threat model
	}
}

func untaggedFieldOK(d DEK) record {
	return record{Payload: d[:]}
}

// --- rule 3: zeroization ---

func derivesAndLeaks(passphrase []byte) {
	dk := PBKDF2SHA256(passphrase, nil, 1000, 32) // want `derived key bytes in "dk" are never zeroized`
	use(dk)
}

func derivesAndZeroizes(passphrase []byte) DEK {
	dk := PBKDF2SHA256(passphrase, nil, 1000, 32)
	defer Zeroize(dk)
	d, _ := DEKFromBytes(dk)
	return d
}

func derivesAndReturns(passphrase []byte) []byte {
	dk := HKDFSHA256(passphrase, nil, nil, 32)
	return dk // ownership moves to the caller
}

func decodesWireKeyAndLeaks(h string) (DEK, error) {
	raw, err := hex.DecodeString(h)
	if err != nil {
		return DEK{}, err
	}
	d, err := DEKFromBytes(raw) // want `derived key bytes in "raw" are never zeroized`
	return d, err
}

func decodesWireKeyClean(h string) (DEK, error) {
	raw, err := hex.DecodeString(h)
	if err != nil {
		return DEK{}, err
	}
	defer Zeroize(raw)
	return DEKFromBytes(raw)
}

// retainsByDesign keeps the derived buffer alive for the session.
//
//shield:nokeyhygiene long-lived session key retained by design
func retainsByDesign(passphrase []byte) {
	dk := HKDFSHA256(passphrase, nil, nil, 32)
	use(dk)
}
