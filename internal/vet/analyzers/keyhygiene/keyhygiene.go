// Package keyhygiene keeps key material out of logs, error strings, and
// serialized structures, and requires derived key bytes to be zeroized.
//
// BigFoot's analysis of encrypted-WAL leakage and the host-side encryption
// literature agree on the boring failure mode: keys don't leak through the
// cipher, they leak through a debug print, an error annotation, or a struct
// that gets marshaled somewhere unexpected. Three rules:
//
//  1. Sinks: an expression that is key material — a value of a DEK-named
//     type, a slice of one (dek[:]), a DEK.Hex() call, or a []byte/[N]byte
//     whose identifier smells like a key (dek/key/passkey/secret/master) —
//     must not appear as an argument to fmt print/format functions or to
//     anything in package log. A bare DEK value is flagged too, even though
//     crypt.DEK.String() redacts itself: relying on the String method is one
//     refactor away from a leak.
//
//  2. Serialization: key material (or hex/base64 encodings of it) must not
//     be assigned to struct fields carrying a `json:` tag in a composite
//     literal. Wire messages and snapshot records are exactly where a key
//     escapes the process; the two legitimate sites in this repo (the KDS
//     wire response, whose channel the paper's threat model assumes secure,
//     and the KDS snapshot record, which is encrypted before it reaches
//     disk) carry //shield:nokeyhygiene annotations saying so.
//
//  3. Zeroization: a local variable holding the result of a key-derivation
//     call (PBKDF2SHA256, HKDFSHA256), or a local []byte passed to
//     DEKFromBytes, must be wiped with a Zeroize call (usually deferred) in
//     the same function, unless the function returns it (ownership moves to
//     the caller). Go cannot promise the GC never copied the bytes, but
//     bounding the window beats leaving derived keys live on the heap
//     indefinitely.
package keyhygiene

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"shield/internal/vet/analysis"
	"shield/internal/vet/vetutil"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "keyhygiene",
	Doc:  "key material must not reach fmt/log/serialized fields, and derived key bytes must be zeroized",
	Run:  run,
}

// fmtSinks are the fmt functions whose arguments end up in human-readable
// output. Every function in package log is a sink.
var fmtSinks = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Errorf": true,
}

// derivers return freshly materialized key bytes.
var derivers = map[string]bool{"PBKDF2SHA256": true, "HKDFSHA256": true}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if pass.InTestFile(f.Pos()) {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				checkSinkCall(pass, n)
			case *ast.CompositeLit:
				checkSerializedFields(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkZeroization(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// isKeyExpr reports whether e is key material, with a short description for
// the diagnostic.
func isKeyExpr(pass *analysis.Pass, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return "", false
	}
	if vetutil.IsNamed(tv.Type, "DEK") {
		return "DEK value", true
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Hex" {
			if recv := vetutil.ReceiverType(pass.TypesInfo, call); vetutil.IsNamed(recv, "DEK") {
				return "DEK.Hex()", true
			}
		}
		return "", false
	}
	if sl, ok := e.(*ast.SliceExpr); ok {
		if xt, ok := pass.TypesInfo.Types[sl.X]; ok && vetutil.IsNamed(xt.Type, "DEK") {
			return "DEK bytes", true
		}
	}
	if vetutil.IsByteSlice(tv.Type) && vetutil.KeyName(vetutil.RootName(e)) {
		return "key bytes " + vetutil.RootName(e), true
	}
	return "", false
}

// keyEncoding reports whether e encodes key material to a string
// (hex.EncodeToString(key), base64 encodings).
func keyEncoding(pass *analysis.Pass, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	fn := vetutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	switch {
	case vetutil.PkgPath(fn) == "encoding/hex" && fn.Name() == "EncodeToString",
		vetutil.PkgPath(fn) == "encoding/base64" && fn.Name() == "EncodeToString":
		for _, arg := range call.Args {
			if what, ok := isKeyExpr(pass, arg); ok {
				return "hex/base64 of " + what, true
			}
		}
	}
	return "", false
}

func checkSinkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := vetutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	pkg := vetutil.PkgPath(fn)
	isSink := (pkg == "fmt" && fmtSinks[fn.Name()]) || pkg == "log" || pkg == "log/slog"
	if !isSink {
		return
	}
	for _, arg := range call.Args {
		what, ok := isKeyExpr(pass, arg)
		if !ok {
			what, ok = keyEncoding(pass, arg)
		}
		if !ok {
			continue
		}
		pass.Reportf(arg.Pos(),
			"%s flows into %s.%s: key material must never reach logs or error strings (//shield:nokeyhygiene <reason> if provably not a key)",
			what, pkg, fn.Name())
	}
}

func checkSerializedFields(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		if !fieldSerialized(st, key.Name) {
			continue
		}
		what, isKey := isKeyExpr(pass, kv.Value)
		if !isKey {
			what, isKey = keyEncoding(pass, kv.Value)
		}
		if !isKey {
			continue
		}
		pass.Reportf(kv.Pos(),
			"%s assigned to serialized field %s (json-tagged): key material must not be marshaled (//shield:nokeyhygiene <reason> if the encoding is protected)",
			what, key.Name)
	}
}

func fieldSerialized(st *types.Struct, name string) bool {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return strings.Contains(st.Tag(i), "json:")
		}
	}
	return false
}

// checkZeroization flags locals that receive derived key bytes and are
// neither zeroized nor returned.
func checkZeroization(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Locals that must be wiped: name -> position of materialization.
	need := map[string]token.Pos{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				fn := vetutil.Callee(pass.TypesInfo, call)
				if fn == nil || !derivers[fn.Name()] {
					continue
				}
				if i >= len(n.Lhs) && len(n.Lhs) != 1 {
					continue
				}
				lhs := n.Lhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					lhs = n.Lhs[i]
				}
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" && isLocalVar(pass, id) {
					need[id.Name] = call.Pos()
				}
			}
		case *ast.CallExpr:
			fn := vetutil.Callee(pass.TypesInfo, n)
			if fn != nil && fn.Name() == "DEKFromBytes" && len(n.Args) >= 1 {
				if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok && isLocalVar(pass, id) {
					if _, seen := need[id.Name]; !seen {
						need[id.Name] = n.Pos()
					}
				}
			}
		}
		return true
	})
	if len(need) == 0 {
		return
	}

	// A local is satisfied if Zeroize(x) / x.Zeroize() appears anywhere in
	// the function (defers included), or if x is returned.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := vetutil.Callee(pass.TypesInfo, n)
			if fn == nil || fn.Name() != "Zeroize" {
				return true
			}
			for _, arg := range n.Args {
				delete(need, vetutil.RootName(arg))
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				delete(need, vetutil.RootName(sel.X))
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				delete(need, vetutil.RootName(res))
			}
		}
		return true
	})
	for name, pos := range need {
		pass.Reportf(pos,
			"derived key bytes in %q are never zeroized: add `defer crypt.Zeroize(%s)` (or return the buffer to transfer ownership); //shield:nokeyhygiene <reason> if retention is intended",
			name, name)
	}
}

func isLocalVar(pass *analysis.Pass, id *ast.Ident) bool {
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	return ok && !v.IsField() && v.Parent() != v.Pkg().Scope()
}
