package keyhygiene_test

import (
	"testing"

	"shield/internal/vet/analyzers/keyhygiene"
	"shield/internal/vet/vettest"
)

func TestKeyHygiene(t *testing.T) {
	vettest.Run(t, "testdata", keyhygiene.Analyzer, "a")
}
