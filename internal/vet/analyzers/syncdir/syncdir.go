// Package syncdir enforces the durability-ordering rule the PR 2 crash
// harness proved by brute force: a file created or renamed into a directory
// does not survive power loss until the parent directory has been synced.
//
// Invariant: in non-test code, a call to an FS-shaped value's Rename or
// Create must be followed — later in the same function — by a SyncDir call,
// or carry an explicit //shield:nosyncdir <reason> annotation. "FS-shaped"
// means the receiver's method set includes SyncDir, which matches vfs.FS and
// every wrapper, without this analyzer importing them (fixtures model the
// interface locally).
//
// The check is a syntactic post-dominance approximation, not a CFG walk: it
// demands that *some* SyncDir call appear at a later source position inside
// the same top-level function (closures included). That is exactly the shape
// of every legitimate site in this repo (write tmp → rename → SyncDir;
// create outputs → SyncDir before the manifest edit), and it caught the
// kds.PersistentStore.Save rename that shipped without one. Functions that
// intentionally defer the sync to a caller (e.g. a helper that writes a tmp
// file which the caller renames and syncs) document that with the
// annotation.
//
// Methods on FS-shaped receivers are exempt: wrappers (fault, latency,
// counting, encfs, crash) forward Rename/Create and do not own durability
// policy — their callers do.
package syncdir

import (
	"go/ast"
	"go/token"

	"shield/internal/vet/analysis"
	"shield/internal/vet/vetutil"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "syncdir",
	Doc:  "FS.Rename/Create must be followed by SyncDir on the parent directory in the same function (crash durability)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			if recvIsFS(pass, fd) {
				continue // FS wrapper forwarding; durability owned by callers
			}
			check(pass, fd.Body)
		}
	}
	return nil
}

func recvIsFS(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]
	if !ok {
		return false
	}
	return vetutil.HasMethod(tv.Type, "SyncDir")
}

func check(pass *analysis.Pass, body *ast.BlockStmt) {
	type site struct {
		pos  token.Pos
		name string
	}
	var (
		mutations []site
		lastSync  token.Pos = token.NoPos
	)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Rename", "Create":
			if recv := vetutil.ReceiverType(pass.TypesInfo, call); vetutil.HasMethod(recv, "SyncDir") {
				mutations = append(mutations, site{call.Pos(), sel.Sel.Name})
			}
		case "SyncDir":
			if call.End() > lastSync {
				lastSync = call.End()
			}
		}
		return true
	})
	for _, m := range mutations {
		if lastSync > m.pos {
			continue
		}
		pass.Reportf(m.pos,
			"FS.%s with no later SyncDir in this function: the entry is not durable until the parent directory is synced; add fs.SyncDir(dir) or annotate //shield:nosyncdir <reason>",
			m.name)
	}
}
