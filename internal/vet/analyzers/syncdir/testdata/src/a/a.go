// Package a exercises the syncdir analyzer: Rename/Create on an FS-shaped
// value (method set includes SyncDir) must be followed by a SyncDir later in
// the same function, be annotated with a justification, or live in a method
// of an FS-shaped wrapper.
package a

// File is the write handle shape.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS is the local model of the vfs.FS durability surface.
type FS interface {
	Create(name string) (File, error)
	Rename(oldPath, newPath string) error
	SyncDir(dir string) error
	Remove(name string) error
}

func renameWithoutSync(fs FS) error {
	return fs.Rename("a.tmp", "a") // want `FS\.Rename with no later SyncDir`
}

func createWithoutSync(fs FS) {
	fs.Create("wal.log") // want `FS\.Create with no later SyncDir`
}

func renameThenSync(fs FS) error {
	if err := fs.Rename("a.tmp", "a"); err != nil {
		return err
	}
	return fs.SyncDir(".")
}

func syncBeforeDoesNotCount(fs FS) error {
	if err := fs.SyncDir("."); err != nil {
		return err
	}
	return fs.Rename("a.tmp", "a") // want `FS\.Rename with no later SyncDir`
}

func syncInLaterClosureCounts(fs FS) func() error {
	fs.Rename("a.tmp", "a")
	return func() error { return fs.SyncDir(".") }
}

func suppressedWithReason(fs FS) error {
	//shield:nosyncdir caller renames the tmp file into place and syncs the dir
	return fs.Rename("a.tmp", "a")
}

func bareDirectiveDoesNotSuppress(fs FS) error {
	//shield:nosyncdir
	return fs.Rename("a.tmp", "a") // want `FS\.Rename with no later SyncDir`
}

// notFS has a Rename but no SyncDir in its method set, so calls on it are
// not durability-relevant.
type notFS struct{}

func (notFS) Rename(a, b string) error { return nil }

func renameOnNonFS(n notFS) error {
	return n.Rename("a", "b")
}

// wrapper is FS-shaped, so its forwarding methods are exempt: durability
// policy belongs to the wrapper's callers.
type wrapper struct{ inner FS }

func (w wrapper) Create(name string) (File, error) { return w.inner.Create(name) }
func (w wrapper) Rename(o, n string) error         { return w.inner.Rename(o, n) }
func (w wrapper) SyncDir(dir string) error         { return w.inner.SyncDir(dir) }
func (w wrapper) Remove(name string) error         { return w.inner.Remove(name) }
