package syncdir_test

import (
	"testing"

	"shield/internal/vet/analyzers/syncdir"
	"shield/internal/vet/vettest"
)

func TestSyncDir(t *testing.T) {
	vettest.Run(t, "testdata", syncdir.Analyzer, "a")
}
