// Package crypt models the shield crypt seam for the noncebound fixtures:
// the analyzer recognizes it by import-path suffix, exactly like the real
// shield/internal/crypt.
package crypt

// DEK is a data-encryption key.
type DEK [16]byte

// Sealer models the audited per-file AEAD wrapper.
type Sealer struct{ _ [0]byte }

// NewIV models the crypt randomness helper the nonce prefix must come from.
func NewIV() ([16]byte, error) {
	var iv [16]byte
	return iv, nil
}

// NewSealer models the real constructor: (key, noncePrefix, aad).
func NewSealer(key DEK, noncePrefix []byte, aad []byte) (*Sealer, error) {
	_ = key
	_ = noncePrefix
	_ = aad
	return &Sealer{}, nil
}
