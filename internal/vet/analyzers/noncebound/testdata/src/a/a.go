// Package a exercises the noncebound analyzer: cipher constructions and raw
// AEAD calls outside crypt, fabricated / reused / underived Sealer nonce
// prefixes, the trusted write (crypt.NewIV) and reopen (parsed header)
// provenances, and the suppression forms.
package a

import (
	"crypto/aes"
	"crypto/cipher"

	"crypt"
)

// --- cipher constructions outside internal/crypt are flagged.

func rawGCM(key []byte) cipher.AEAD {
	block, _ := aes.NewCipher(key)
	aead, _ := cipher.NewGCM(block) // want `cipher\.NewGCM outside internal/crypt`
	return aead
}

func rawCTR(key, iv []byte) cipher.Stream {
	block, _ := aes.NewCipher(key)
	return cipher.NewCTR(block, iv) // want `cipher\.NewCTR outside internal/crypt`
}

// --- raw AEAD Seal/Open outside crypt is flagged even on a received AEAD.

func sealWith(aead cipher.AEAD, nonce, plain []byte) []byte {
	return aead.Seal(nil, nonce, plain, nil) // want `raw AEAD Seal outside internal/crypt`
}

func openWith(aead cipher.AEAD, nonce, ct []byte) ([]byte, error) {
	return aead.Open(nil, nonce, ct, nil) // want `raw AEAD Open outside internal/crypt`
}

// --- Sealer nonce-prefix provenance.

// write path: fresh randomness from the crypt helper is the trusted form.
func sealFresh(key crypt.DEK, hdr []byte) (*crypt.Sealer, error) {
	iv, err := crypt.NewIV()
	if err != nil {
		return nil, err
	}
	return crypt.NewSealer(key, iv[:8], hdr)
}

// reopen path: a prefix recovered by a header parser is trusted.
func parseHeader(b []byte) ([16]byte, int) {
	var iv [16]byte
	copy(iv[:], b)
	return iv, 16
}

func sealReopen(key crypt.DEK, raw []byte) (*crypt.Sealer, error) {
	iv, hdrLen := parseHeader(raw)
	return crypt.NewSealer(key, iv[:8], raw[:hdrLen])
}

// a literal prefix is fabricated.
func sealLiteral(key crypt.DEK, hdr []byte) (*crypt.Sealer, error) {
	return crypt.NewSealer(key, []byte("prefix00"), hdr) // want `caller-fabricated nonce prefix`
}

// a prefix from an arbitrary local derivation is not trusted.
func makeNonce() []byte { return make([]byte, 8) }

func sealDerived(key crypt.DEK, hdr []byte) (*crypt.Sealer, error) {
	nonce := makeNonce()
	return crypt.NewSealer(key, nonce, hdr) // want `not derived from crypt randomness or a parsed header`
}

// a call result used directly has no checkable root.
func sealOpaque(key crypt.DEK, hdr []byte) (*crypt.Sealer, error) {
	return crypt.NewSealer(key, makeNonce(), hdr) // want `unverifiable provenance`
}

// a prefix parameter is accepted: the assigning site is checked where it
// assigns.
func sealParam(key crypt.DEK, prefix, hdr []byte) (*crypt.Sealer, error) {
	return crypt.NewSealer(key, prefix, hdr)
}

// --- reuse of one prefix across two constructions in a scope.

func sealTwice(key crypt.DEK, hdr []byte) error {
	iv, err := crypt.NewIV()
	if err != nil {
		return err
	}
	if _, err := crypt.NewSealer(key, iv[:8], hdr); err != nil {
		return err
	}
	_, err = crypt.NewSealer(key, iv[:8], hdr) // want `already fed a Sealer construction`
	return err
}

// distinct prefixes are fine.
func sealTwo(key crypt.DEK, hdr []byte) error {
	iv1, err := crypt.NewIV()
	if err != nil {
		return err
	}
	if _, err := crypt.NewSealer(key, iv1[:8], hdr); err != nil {
		return err
	}
	iv2, err := crypt.NewIV()
	if err != nil {
		return err
	}
	_, err = crypt.NewSealer(key, iv2[:8], hdr)
	return err
}

// --- suppression with a reason; bare directives do not suppress.

func sealKAT(key crypt.DEK, hdr []byte) (*crypt.Sealer, error) {
	//shield:nononcebound known-answer self-check sealing a constant vector; nothing persisted under this prefix
	return crypt.NewSealer(key, []byte("kat-vec0"), hdr)
}

func sealKATBare(key crypt.DEK, hdr []byte) (*crypt.Sealer, error) {
	//shield:nononcebound
	return crypt.NewSealer(key, []byte("kat-vec1"), hdr) // want `caller-fabricated nonce prefix`
}
