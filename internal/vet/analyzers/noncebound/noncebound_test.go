package noncebound_test

import (
	"testing"

	"shield/internal/vet/analyzers/noncebound"
	"shield/internal/vet/vettest"
)

func TestNoncebound(t *testing.T) {
	vettest.Run(t, "testdata", noncebound.Analyzer, "a")
}
