// Package noncebound enforces SHIELD's AEAD discipline at the crypto seam.
// GCM security collapses completely on a (key, nonce) reuse — two sealings
// under the same pair leak the XOR of the plaintexts and enable tag forgery
// — so nonce handling is not left to call-site judgment:
//
//  1. Cipher constructions (cipher.NewGCM, NewCTR, NewCBC*, ...) are
//     confined to internal/crypt. Everything outside composes the audited
//     Sealer/Stream abstractions, which bind nonces structurally.
//  2. Raw AEAD Seal/Open calls (cipher.AEAD receivers) are likewise
//     confined to internal/crypt: a caller-fabricated nonce bypasses the
//     prefix‖block-index schedule.
//  3. A crypt.NewSealer nonce prefix must have audited provenance in the
//     calling function: fresh randomness from a crypt helper (crypt.NewIV)
//     for the write path, or bytes recovered by a header parser (a function
//     whose name contains "Header") for the reopen path. Literals and
//     locally fabricated prefixes are rejected, and the same prefix
//     variable must not feed two Sealer constructions in one function —
//     one Sealer per (file, prefix).
//
// The analyzer skips package crypt itself (the primitives legitimately
// handle raw nonces) and, like the whole suite, test files. Audited
// exceptions carry //shield:nononcebound <reason>.
package noncebound

import (
	"go/ast"
	"go/types"

	"shield/internal/vet/analysis"
	"shield/internal/vet/vetutil"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "noncebound",
	Doc:  "cipher construction and raw AEAD use stay inside internal/crypt; Sealer nonce prefixes come from crypt randomness or parsed headers, never literals, never reused in a scope",
	Run:  run,
}

// cipherConstructors are the crypto/cipher mode constructors that mint a
// nonce-consuming primitive.
var cipherConstructors = map[string]bool{
	"NewCTR": true, "NewGCM": true, "NewGCMWithNonceSize": true,
	"NewGCMWithTagSize": true, "NewCBCEncrypter": true, "NewCBCDecrypter": true,
	"NewCFBEncrypter": true, "NewCFBDecrypter": true, "NewOFB": true,
}

func run(pass *analysis.Pass) error {
	if vetutil.PathIs(pass.Pkg.Path(), "crypt") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Sealer constructions seen in this function, keyed by the nonce-prefix
	// root object, to catch prefix reuse across constructions.
	seen := map[types.Object]ast.Expr{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := vetutil.Callee(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		pkg := vetutil.PkgPath(fn)

		if pkg == "crypto/cipher" && cipherConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"cipher.%s outside internal/crypt: cipher modes are constructed only behind the audited Sealer/Stream seam, where nonce schedules are bound structurally",
				fn.Name())
			return true
		}
		if (fn.Name() == "Seal" || fn.Name() == "Open") && isAEADReceiver(pass, call) {
			pass.Reportf(call.Pos(),
				"raw AEAD %s outside internal/crypt: a caller-supplied nonce bypasses the prefix‖block-index schedule; use crypt.Sealer",
				fn.Name())
			return true
		}
		if fn.Name() == "NewSealer" && vetutil.PathIs(pkg, "crypt") && len(call.Args) >= 2 {
			checkNoncePrefix(pass, fd, call.Args[1], seen)
		}
		return true
	})
}

func isAEADReceiver(pass *analysis.Pass, call *ast.CallExpr) bool {
	recv := vetutil.ReceiverType(pass.TypesInfo, call)
	if recv == nil {
		return false
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "crypto/cipher" && obj.Name() == "AEAD"
}

func checkNoncePrefix(pass *analysis.Pass, fd *ast.FuncDecl, arg ast.Expr, seen map[types.Object]ast.Expr) {
	if isLiteral(arg) {
		pass.Reportf(arg.Pos(),
			"caller-fabricated nonce prefix for crypt.NewSealer: a fixed prefix reuses (key, nonce) pairs across files, which breaks GCM; use crypt.NewIV")
		return
	}
	root := rootIdent(arg)
	if root == nil {
		pass.Reportf(arg.Pos(),
			"nonce prefix for crypt.NewSealer has unverifiable provenance: derive it from crypt.NewIV (create) or a parsed file header (reopen), or annotate //shield:nononcebound <reason>")
		return
	}
	obj := pass.TypesInfo.Uses[root]
	if obj == nil {
		obj = pass.TypesInfo.Defs[root]
	}
	if obj != nil {
		if prev, dup := seen[obj]; dup {
			pass.Reportf(arg.Pos(),
				"nonce prefix %s already fed a Sealer construction in this function (at %s): sealing two files under one (key, prefix) reuses every block nonce",
				root.Name, pass.Fset.Position(prev.Pos()))
			return
		}
		seen[obj] = arg
	}

	switch provenance(pass, fd, root, obj) {
	case provOK:
	case provBad:
		pass.Reportf(arg.Pos(),
			"nonce prefix %s is not derived from crypt randomness or a parsed header: fabricated prefixes risk (key, nonce) reuse; use crypt.NewIV or annotate //shield:nononcebound <reason>",
			root.Name)
	}
	return
}

type prov int

const (
	provOK prov = iota
	provBad
)

// provenance classifies how the nonce-prefix root variable got its value
// inside fd: assignment from a crypt helper or a header parser is OK;
// anything else visible is suspect. A root with no visible assignment (a
// parameter or field) is accepted — the defining site is checked where it
// assigns.
func provenance(pass *analysis.Pass, fd *ast.FuncDecl, root *ast.Ident, obj types.Object) prov {
	if obj == nil {
		return provOK
	}
	verdict := provOK
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			lobj := pass.TypesInfo.Defs[id]
			if lobj == nil {
				lobj = pass.TypesInfo.Uses[id]
			}
			if lobj != obj {
				continue
			}
			// Which RHS feeds this LHS: 1:1 assignments align by index; a
			// multi-value call covers every LHS.
			rhs := as.Rhs[0]
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			}
			if !assignedFromTrusted(pass, rhs) {
				verdict = provBad
			}
		}
		return true
	})
	return verdict
}

// assignedFromTrusted reports whether rhs is a call to a crypt helper
// (crypt.NewIV and friends) or to a header parser (name contains "Header" —
// parseHeader/readHeader recover the prefix a previous writer drew from
// crypt randomness).
func assignedFromTrusted(pass *analysis.Pass, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := vetutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if vetutil.PathIs(vetutil.PkgPath(fn), "crypt") {
		return true
	}
	return containsFold(fn.Name(), "header")
}

func containsFold(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		match := true
		for j := 0; j < len(sub); j++ {
			c := s[i+j]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != sub[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// isLiteral reports a compile-time-fabricated value: basic literals,
// composite literals, and conversions of them ([]byte("prefix")).
func isLiteral(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit, *ast.CompositeLit:
		return true
	case *ast.CallExpr: // conversions like []byte("x")
		if len(e.Args) == 1 {
			return isLiteral(e.Args[0])
		}
	case *ast.SliceExpr:
		return isLiteral(e.X)
	}
	return false
}

// rootIdent digs the base identifier out of the prefix expression:
// iv[:8], iv, (iv) all resolve to iv; selectors (h.iv) resolve to the field
// identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e
	case *ast.SliceExpr:
		return rootIdent(e.X)
	case *ast.IndexExpr:
		return rootIdent(e.X)
	case *ast.SelectorExpr:
		return e.Sel
	case *ast.CallExpr:
		if len(e.Args) == 1 {
			return rootIdent(e.Args[0])
		}
	}
	return nil
}
