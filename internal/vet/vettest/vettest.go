// Package vettest is an analysistest-style fixture runner for shield-vet
// analyzers: fixtures live under testdata/src/<pkg>, and lines that should
// produce a diagnostic carry a `// want "regexp"` comment. Each want must be
// matched by a diagnostic on its line, and every diagnostic must be matched
// by a want — both directions fail the test, exactly like
// golang.org/x/tools/go/analysis/analysistest.
package vettest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"shield/internal/vet/analysis"
	"shield/internal/vet/load"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")

// Run loads each fixture package under testdata/src and applies the
// analyzer, comparing diagnostics against // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	abs, err := filepath.Abs(testdata)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := load.NewLoader(".")
	if err != nil {
		t.Fatalf("vettest: %v", err)
	}
	loader.FixtureRoots = []string{filepath.Join(abs, "src")}

	for _, pkg := range pkgs {
		dir := filepath.Join(abs, "src", pkg)
		p, err := loader.LoadDir(dir)
		if err != nil {
			t.Errorf("%s: load: %v", pkg, err)
			continue
		}
		for _, terr := range p.TypeErrors {
			t.Errorf("%s: type error: %v", pkg, terr)
		}

		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Types,
			TypesInfo: p.Info,
		}
		pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
		if err := a.Run(pass); err != nil {
			t.Errorf("%s: analyzer: %v", pkg, err)
			continue
		}
		compare(t, p.Fset, dir, diags)
	}
}

type key struct {
	file string
	line int
}

// compare matches diagnostics against want comments in the fixture sources.
func compare(t *testing.T, fset *token.FileSet, dir string, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[key][]*regexp.Regexp{}
	ents, err := os.ReadDir(dir) //shield:nofs the fixture runner reads Go sources directly; there is no vfs seam beneath the toolchain
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path) //shield:nofs fixture source read, same as above
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
				pat := arg[1]
				if pat == "" {
					pat = arg[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Errorf("%s:%d: bad want pattern %q: %v", path, i+1, pat, err)
					continue
				}
				wants[key{path, i + 1}] = append(wants[key{path, i + 1}], re)
			}
		}
	}

	matched := map[*regexp.Regexp]bool{}
	var unexpected []string
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		found := false
		for _, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched[re] = true
				found = true
				break
			}
		}
		if !found {
			unexpected = append(unexpected, fmt.Sprintf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message))
		}
	}
	sort.Strings(unexpected)
	for _, u := range unexpected {
		t.Error(u)
	}
	for k, res := range wants {
		for _, re := range res {
			if !matched[re] {
				t.Errorf("%s:%d: no diagnostic matched want %q", k.file, k.line, re)
			}
		}
	}
}
