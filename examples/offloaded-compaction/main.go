// Offloaded-compaction: the paper's Section 5.6 case study end to end.
// Compactions are enqueued into an orchestrator on the compute node; a
// worker co-located with the storage node polls it for leased jobs, reads
// the DEK-ID from each input file's plaintext header, fetches the DEK
// (one-time provisioning), merges, and writes outputs under fresh DEKs —
// rotating keys as a side effect. If the worker died mid-job its lease
// would expire, its partial outputs would be swept, and the job would be
// reclaimed by another worker.
package main

import (
	"fmt"
	"log"
	"time"

	"shield/internal/compactsvc"
	"shield/internal/core"
	"shield/internal/dstore"
	"shield/internal/kds"
	"shield/internal/lsm"
	"shield/internal/seccache"
	"shield/internal/vfs"
)

func main() {
	// Storage node + emulated 1 Gbps link.
	storageDisk := vfs.NewMem()
	storage, err := dstore.NewServer(storageDisk, "127.0.0.1:0", 200*time.Microsecond, 125<<20)
	if err != nil {
		log.Fatal(err)
	}
	defer storage.Close()

	// KDS with both servers enrolled.
	kdsStore := kds.NewStore(kds.DefaultPolicy())
	kdsStore.Authorize("compute-1")
	kdsStore.Authorize("worker-1")
	kdsSrv, err := kds.NewServer(kdsStore, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer kdsSrv.Close()

	// Compaction worker on the storage node: local disk access, own KDS
	// identity, own secure cache.
	workerKDS := kds.NewClient("worker-1", kdsSrv.Addr())
	defer workerKDS.Close()
	workerCache, err := seccache.Open(vfs.NewMem(), "worker-cache.bin", []byte("worker-pass"))
	if err != nil {
		log.Fatal(err)
	}
	workerWrapper, err := core.Config{
		Mode:  core.ModeSHIELD,
		FS:    storage.LocalFS(),
		KDS:   workerKDS,
		Cache: workerCache,
	}.BuildWrapper()
	if err != nil {
		log.Fatal(err)
	}
	// Compute node.
	remoteFS, err := dstore.Dial(storage.Addr(), 4)
	if err != nil {
		log.Fatal(err)
	}
	defer remoteFS.Close()
	computeKDS := kds.NewClient("compute-1", kdsSrv.Addr())
	defer computeKDS.Close()
	computeCache, err := seccache.Open(vfs.NewMem(), "compute-cache.bin", []byte("compute-pass"))
	if err != nil {
		log.Fatal(err)
	}

	// Orchestrator on the compute node; the storage-side worker dials it.
	orch, err := compactsvc.NewOrchestrator(remoteFS, "127.0.0.1:0", compactsvc.OrchestratorConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer orch.Close()
	worker := compactsvc.NewWorker(storage.LocalFS(), workerWrapper, "worker-1", orch.Addr(),
		compactsvc.WorkerConfig{PollEvery: 5 * time.Millisecond})
	defer worker.Close()
	fmt.Println("compaction orchestrator on", orch.Addr())

	cfg := core.Config{
		Mode:          core.ModeSHIELD,
		FS:            remoteFS,
		KDS:           computeKDS,
		Cache:         computeCache,
		WALBufferSize: 512,
	}
	opts := lsm.Options{
		MemtableSize:        512 << 10,
		BaseLevelSize:       2 << 20,
		L0CompactionTrigger: 2,
		Compactor:           orch, // enqueue compactions for the worker pool
	}
	db, err := core.Open("db", cfg, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Write enough (with overwrites) that leveled compaction has real work.
	const n = 60_000
	start := time.Now()
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("item/%06d", i%20_000)
		v := fmt.Sprintf("version-%d", i)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := db.CompactRange(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingest + full compaction: %v\n", time.Since(start).Round(time.Millisecond))

	jobs, bytesIn, bytesOut := worker.Stats()
	fmt.Printf("offloaded worker executed %d jobs, read %.1f MiB, wrote %.1f MiB locally\n",
		jobs, float64(bytesIn)/(1<<20), float64(bytesOut)/(1<<20))

	// Compaction re-encrypted everything under worker-issued DEKs; the
	// compute node resolves them through DEK-IDs transparently.
	v, err := db.Get([]byte("item/010000"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("item/010000 = %s (decrypted via metadata DEK-ID -> KDS -> secure cache)\n", v)

	issued, fetched, denied := kdsStore.Stats()
	fmt.Printf("KDS: issued=%d fetched=%d denied=%d\n", issued, fetched, denied)
	m := db.Metrics()
	fmt.Printf("engine: flushes=%d compactions=%d compacted=%.1f MiB\n",
		m.Flushes, m.Compactions, float64(m.CompactionWritten)/(1<<20))
}
