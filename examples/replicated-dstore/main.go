// Replicated dstore: run the encrypted LSM-KVS over THREE storage nodes
// behind a quorum-2 replica set — writes fan out to every reachable
// replica and acknowledge at quorum, reads fail over to any in-sync
// replica — then kill one node in the middle of the workload and watch the
// database not care. When the node returns, the background re-sync repairs
// it from the survivors, byte for byte, and promotes it back to full
// membership.
//
// Topology (one process for the demo; every arrow is a real TCP
// connection):
//
//	                     ┌──▶ storage node 0 (dstore over its own disk)
//	compute ──replica────┼──▶ storage node 1   ← killed mid-workload,
//	node      set, W=2   └──▶ storage node 2     restarted, re-synced
//	   │
//	   └────DEK requests────▶ KDS
package main

import (
	"fmt"
	"log"
	"time"

	"shield/internal/core"
	"shield/internal/dstore"
	"shield/internal/kds"
	"shield/internal/lsm"
	"shield/internal/metrics"
	"shield/internal/seccache"
	"shield/internal/vfs"
)

func main() {
	// --- Three storage nodes, each a dstore server over its own disk.
	var (
		disks [3]*vfs.MemFS
		nodes [3]*dstore.Server
		addrs []string
	)
	for i := range nodes {
		disks[i] = vfs.NewMem()
		srv, err := dstore.NewServer(disks[i], "127.0.0.1:0", 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		nodes[i] = srv
		addrs = append(addrs, srv.Addr())
		fmt.Printf("storage node %d on %s\n", i, srv.Addr())
	}

	// --- The replica set: quorum-2 fan-out writes, read-any failover,
	// background re-sync every 50ms.
	rs, err := dstore.DialReplicaSet(dstore.ReplicaConfig{
		WriteQuorum: 2,
		Dirs:        []string{"db"},
		ResyncEvery: 50 * time.Millisecond,
	}, addrs...)
	if err != nil {
		log.Fatal(err)
	}
	defer rs.Close()

	// --- KDS and the compute node's database, opened over the replica set.
	kdsStore := kds.NewStore(kds.DefaultPolicy())
	kdsStore.Authorize("compute-1")
	kdsSrv, err := kds.NewServer(kdsStore, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer kdsSrv.Close()
	kdsClient := kds.NewClient("compute-1", kdsSrv.Addr())
	defer kdsClient.Close()
	cache, err := seccache.Open(vfs.NewMem(), "dek-cache.bin", []byte("compute-passkey"))
	if err != nil {
		log.Fatal(err)
	}
	db, err := core.Open("db", core.Config{
		Mode:          core.ModeSHIELD,
		FS:            rs,
		KDS:           kdsClient,
		Cache:         cache,
		WALBufferSize: 512,
	}, lsm.Options{MemtableSize: 256 << 10})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// --- Write through a node failure: node 1 dies halfway in, and every
	// Put keeps being acknowledged — two replicas still satisfy quorum.
	const n = 10_000
	start := time.Now()
	for i := 0; i < n; i++ {
		if i == n/2 {
			nodes[1].Close()
			fmt.Println("killed storage node 1 mid-workload")
		}
		k := fmt.Sprintf("sensor/%06d", i)
		v := fmt.Sprintf("reading=%d", i*i)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			log.Fatalf("Put %d: %v", i, err)
		}
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d KV-pairs through the failure in %v\n", n, time.Since(start).Round(time.Millisecond))

	// --- The node returns on its old address and disk; re-sync repairs it
	// from the survivors and promotes it back to full membership.
	restarted, err := dstore.NewServer(disks[1], addrs[1], 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer restarted.Close()
	fmt.Println("restarted storage node 1; waiting for re-sync")
	for deadline := time.Now().Add(10 * time.Second); ; {
		inSync := 0
		for _, st := range rs.Replicas() {
			if st.InSync {
				inSync++
			}
		}
		if inSync == len(addrs) {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("replica 1 never rejoined: %+v", rs.Replicas())
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, st := range rs.Replicas() {
		fmt.Printf("replica %-21s health=%-9s in_sync=%v\n", st.Addr, st.Health, st.InSync)
	}

	v, err := db.Get([]byte("sensor/007777"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back sensor/007777 = %s\n", v)

	// --- What the failover machinery did, per replica.
	nv := metrics.Net.Snapshot()
	fmt.Printf("net: retries=%d failovers=%d quorum_shortfalls=%d resyncs=%d resync_bytes=%d\n",
		nv.Retries, nv.Failovers, nv.QuorumShortfalls, nv.Resyncs, nv.ResyncBytes)
	for _, addr := range nv.EndpointOrder() {
		es := nv.Endpoints[addr]
		fmt.Printf("  %-21s errors=%d resyncs=%d resync_bytes=%d\n", addr, es.Errors, es.Resyncs, es.ResyncBytes)
	}
}
