// Read-replica: the DS optimization of launching on-demand read-only
// instances over shared storage (Section 2.2). A primary ingests on one
// "server"; a read-only replica on another server opens the same encrypted
// directory, resolves DEKs through the metadata DEK-IDs and its own KDS
// identity, and serves queries without writing a byte.
package main

import (
	"fmt"
	"log"
	"time"

	"shield/internal/core"
	"shield/internal/dstore"
	"shield/internal/kds"
	"shield/internal/lsm"
	"shield/internal/vfs"
)

func main() {
	// Shared disaggregated storage.
	storage, err := dstore.NewServer(vfs.NewMem(), "127.0.0.1:0", 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer storage.Close()

	// KDS shared by both servers. Read replicas re-resolve many DEKs, so
	// this deployment uses a per-server-sharing policy (unbounded fetches)
	// rather than strict one-time provisioning; a production alternative is
	// the hierarchical-derivation KDS (kds.NewDerived).
	kdsStore := kds.NewStore(kds.Policy{MaxFetches: 0})
	kdsStore.Authorize("primary")
	kdsStore.Authorize("replica")
	kdsSrv, err := kds.NewServer(kdsStore, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer kdsSrv.Close()

	// Primary: ingest and flush.
	primaryFS, err := dstore.Dial(storage.Addr(), 2)
	if err != nil {
		log.Fatal(err)
	}
	defer primaryFS.Close()
	primaryKDS := kds.NewClient("primary", kdsSrv.Addr())
	defer primaryKDS.Close()
	primary, err := core.Open("db", core.Config{
		Mode:          core.ModeSHIELD,
		FS:            primaryFS,
		KDS:           primaryKDS,
		WALBufferSize: 512,
	}, lsm.Options{MemtableSize: 256 << 10})
	if err != nil {
		log.Fatal(err)
	}
	defer primary.Close()

	start := time.Now()
	for i := 0; i < 30_000; i++ {
		k := fmt.Sprintf("article/%06d", i)
		v := fmt.Sprintf("content-%d", i*7)
		if err := primary.Put([]byte(k), []byte(v)); err != nil {
			log.Fatal(err)
		}
	}
	if err := primary.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primary ingested 30k records in %v\n", time.Since(start).Round(time.Millisecond))

	// Replica: separate connection, separate KDS identity, read-only open.
	replicaFS, err := dstore.Dial(storage.Addr(), 2)
	if err != nil {
		log.Fatal(err)
	}
	defer replicaFS.Close()
	replicaKDS := kds.NewClient("replica", kdsSrv.Addr())
	defer replicaKDS.Close()
	replica, err := core.Open("db", core.Config{
		Mode: core.ModeSHIELD,
		FS:   replicaFS,
		KDS:  replicaKDS,
	}, lsm.Options{ReadOnly: true})
	if err != nil {
		log.Fatal(err)
	}
	defer replica.Close()

	// Serve reads from the replica while the primary keeps writing.
	go func() {
		for i := 30_000; i < 40_000; i++ {
			primary.Put([]byte(fmt.Sprintf("article/%06d", i)), []byte("new"))
		}
	}()

	readStart := time.Now()
	reads := 0
	for i := 0; i < 30_000; i += 3 {
		k := fmt.Sprintf("article/%06d", i)
		v, err := replica.Get([]byte(k))
		if err != nil {
			log.Fatalf("replica Get(%s): %v", k, err)
		}
		if len(v) == 0 {
			log.Fatalf("empty value for %s", k)
		}
		reads++
	}
	fmt.Printf("replica served %d reads in %v (snapshot as of its open)\n",
		reads, time.Since(readStart).Round(time.Millisecond))

	if err := replica.Put([]byte("x"), []byte("y")); err != nil {
		fmt.Printf("replica writes correctly refused: %v\n", err)
	}
	issued, fetched, _ := kdsStore.Stats()
	fmt.Printf("KDS: %d DEKs issued by primary, %d fetches (replica resolving via DEK-IDs)\n", issued, fetched)
}
