// Disaggregated: run the LSM-KVS on a compute node against a storage node
// over TCP, with DEKs issued by a network KDS and compactions offloaded
// through a lease-based orchestrator to a storage-side worker — the
// paper's disaggregated-storage deployment (Section 6.4), on loopback.
//
// Topology (all in one process for the demo, but every arrow is a real TCP
// connection):
//
//	compute node ──vfs over TCP──▶ storage node (dstore, 1 Gbps emulated)
//	      │                              ▲ local FS
//	      │ orchestrator ◀──poll/lease── compaction worker (storage-side)
//	      │                              │
//	      └───────DEK requests────▶ KDS ◀┘ (authorization + one-time issue)
package main

import (
	"fmt"
	"log"
	"time"

	"shield/internal/compactsvc"
	"shield/internal/core"
	"shield/internal/dstore"
	"shield/internal/kds"
	"shield/internal/lsm"
	"shield/internal/seccache"
	"shield/internal/vfs"
)

func main() {
	// --- Storage node: a dstore server fronting its local filesystem,
	// emulating a 1 Gbps link with 200 µs round trips.
	storageDisk := vfs.NewMem()
	storage, err := dstore.NewServer(storageDisk, "127.0.0.1:0", 200*time.Microsecond, 125<<20)
	if err != nil {
		log.Fatal(err)
	}
	defer storage.Close()
	fmt.Println("storage node on", storage.Addr())

	// --- KDS: one replicated store behind a TCP front end. Only enrolled
	// servers may request DEKs; a breached server is revoked here.
	// One-time provisioning sized for the fleet: the compute node fetches
	// DEKs the worker created (and vice versa), so the budget is 2.
	policy := kds.DefaultPolicy()
	policy.MaxFetches = 2
	kdsStore := kds.NewStore(policy)
	kdsStore.Authorize("compute-1")
	kdsStore.Authorize("compaction-worker-1")
	kdsSrv, err := kds.NewServer(kdsStore, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer kdsSrv.Close()
	fmt.Println("KDS on", kdsSrv.Addr())

	// --- Compute node: the database opens over the remote filesystem.
	remoteFS, err := dstore.Dial(storage.Addr(), 4)
	if err != nil {
		log.Fatal(err)
	}
	defer remoteFS.Close()
	kdsClient := kds.NewClient("compute-1", kdsSrv.Addr())
	defer kdsClient.Close()

	cache, err := seccache.Open(vfs.NewMem(), "dek-cache.bin", []byte("compute-passkey"))
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{
		Mode:          core.ModeSHIELD,
		FS:            remoteFS,
		KDS:           kdsClient,
		Cache:         cache,
		WALBufferSize: 512,
	}

	// --- Compaction offload: the compute node runs an orchestrator that
	// leases jobs out; a worker co-located with the storage node polls for
	// them and executes with ITS OWN KDS identity and secure cache, so
	// compaction I/O never crosses the compute-storage link.
	orch, err := compactsvc.NewOrchestrator(remoteFS, "127.0.0.1:0", compactsvc.OrchestratorConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer orch.Close()
	workerKDS := kds.NewClient("compaction-worker-1", kdsSrv.Addr())
	defer workerKDS.Close()
	workerCache, err := seccache.Open(vfs.NewMem(), "worker-cache.bin", []byte("worker-passkey"))
	if err != nil {
		log.Fatal(err)
	}
	workerWrapper, err := core.Config{
		Mode:  core.ModeSHIELD,
		FS:    storage.LocalFS(),
		KDS:   workerKDS,
		Cache: workerCache,
	}.BuildWrapper()
	if err != nil {
		log.Fatal(err)
	}
	worker := compactsvc.NewWorker(storage.LocalFS(), workerWrapper, "compaction-worker-1", orch.Addr(),
		compactsvc.WorkerConfig{PollEvery: 5 * time.Millisecond})
	defer worker.Close()
	fmt.Println("orchestrator on", orch.Addr())

	db, err := core.Open("db", cfg, lsm.Options{
		MemtableSize: 256 << 10,
		Compactor:    orch,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const n = 20_000
	start := time.Now()
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("sensor/%06d", i)
		v := fmt.Sprintf("reading=%d", i*i)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d KV-pairs over the wire in %v\n", n, time.Since(start).Round(time.Millisecond))

	if err := db.CompactRange(); err != nil {
		log.Fatal(err)
	}
	jobs, bytesIn, bytesOut := worker.Stats()
	fmt.Printf("offloaded %d compaction job(s) to the storage-side worker (%.1f MiB in, %.1f MiB out)\n",
		jobs, float64(bytesIn)/(1<<20), float64(bytesOut)/(1<<20))

	v, err := db.Get([]byte("sensor/012345"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back sensor/012345 = %s\n", v)

	// What actually crossed the network / sits on the remote disk.
	stats := storage.Stats()
	fmt.Printf("storage node saw: %d writes (%.1f MiB), %d reads (%.1f MiB) — all ciphertext\n",
		stats.WriteOps, float64(stats.BytesWritten)/(1<<20),
		stats.ReadOps, float64(stats.BytesRead)/(1<<20))

	issued, fetched, denied := kdsStore.Stats()
	fmt.Printf("KDS: %d DEKs issued, %d fetches served, %d denied\n", issued, fetched, denied)
}
