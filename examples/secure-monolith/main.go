// Secure-monolith compares the paper's two designs side by side on one box:
// instance-level encryption (EncFS) and SHIELD, against the plaintext
// baseline. It demonstrates
//
//  1. transparent protection: identical application code on all three;
//  2. the confidentiality property: grep the stored bytes for a secret —
//     plaintext shows it, EncFS and SHIELD do not;
//  3. SHIELD's DEK rotation: compaction leaves only fresh DEK-IDs behind;
//  4. the fillrandom cost of each design, a miniature of Figure 7.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"shield/internal/core"
	"shield/internal/crypt"
	"shield/internal/kds"
	"shield/internal/lsm"
	"shield/internal/vfs"
)

const secret = "TOP-SECRET-CUSTOMER-RECORD"

func main() {
	for _, mode := range []core.Mode{core.ModeNone, core.ModeEncFS, core.ModeSHIELD} {
		run(mode)
	}
}

func run(mode core.Mode) {
	fs := vfs.NewMem() // stand-in for a local disk; vfs.NewOS() works too

	cfg := core.Config{Mode: mode, FS: fs, WALBufferSize: 512}
	switch mode {
	case core.ModeEncFS:
		dek, err := crypt.NewDEK()
		if err != nil {
			log.Fatal(err)
		}
		cfg.InstanceDEK = dek
	case core.ModeSHIELD:
		cfg.KDS = kds.NewLocal(kds.NewStore(kds.DefaultPolicy()), "monolith-1")
	}

	opts := lsm.Options{
		MemtableSize:        1 << 20,
		BaseLevelSize:       4 << 20,
		L0CompactionTrigger: 4,
	}
	db, err := core.Open("db", cfg, opts)
	if err != nil {
		log.Fatal(err)
	}

	const n = 50_000
	start := time.Now()
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("customer/%06d", i)
		val := fmt.Sprintf("%s #%06d", secret, i)
		if err := db.Put([]byte(key), []byte(val)); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %d writes in %-12v (%.0f ops/sec)\n",
		mode, n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())

	// The attacker's view: raw bytes on the storage medium.
	leaks := scanForSecret(fs)
	fmt.Printf("%-8s secret visible in stored files: %v\n", mode, leaks)

	if mode == core.ModeSHIELD {
		before := dekIDs(fs)
		if err := db.CompactRange(); err != nil {
			log.Fatal(err)
		}
		after := dekIDs(fs)
		rotated := true
		for id := range after {
			if before[id] {
				rotated = false
			}
		}
		fmt.Printf("%-8s DEKs before=%d after-compaction=%d all-rotated=%v\n",
			mode, len(before), len(after), rotated)
	}
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}

func scanForSecret(fs *vfs.MemFS) bool {
	entries, err := fs.List("db")
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		data, err := vfs.ReadFile(fs, "db/"+e.Name)
		if err != nil {
			log.Fatal(err)
		}
		if bytes.Contains(data, []byte(secret)) {
			return true
		}
	}
	return false
}

// dekIDs reads the plaintext DEK-ID out of every SST header — exactly what
// a remote server does in the metadata-enabled sharing scheme.
func dekIDs(fs *vfs.MemFS) map[string]bool {
	out := make(map[string]bool)
	entries, err := fs.List("db")
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		if !bytes.HasSuffix([]byte(e.Name), []byte(".sst")) {
			continue
		}
		data, err := vfs.ReadFile(fs, "db/"+e.Name)
		if err != nil {
			log.Fatal(err)
		}
		if id, ok := core.DEKIDFromHeader(data); ok {
			out[id] = true
		}
	}
	return out
}
