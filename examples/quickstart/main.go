// Quickstart: open a SHIELD-encrypted database on the local filesystem,
// write, read, scan, and show that every persistent byte is ciphertext
// while the API stays a plain key-value store.
package main

import (
	"fmt"
	"log"
	"os"

	"shield/internal/core"
	"shield/internal/kds"
	"shield/internal/lsm"
	"shield/internal/seccache"
	"shield/internal/vfs"
)

func main() {
	dir, err := os.MkdirTemp("", "shield-quickstart-*") //shield:nofs scratch directory created before any vfs.FS is mounted over it
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir) //shield:nofs cleanup of the same pre-FS scratch directory
	fs := vfs.NewOS()

	// A monolithic deployment uses an in-process KDS; DS deployments point
	// kds.NewClient at shield-kds servers instead.
	store := kds.NewStore(kds.DefaultPolicy())
	service := kds.NewLocal(store, "quickstart-server")

	// The secure cache persists DEKs across restarts, sealed by a passkey
	// that never touches disk.
	cache, err := seccache.Open(fs, dir+"/dek-cache.bin", []byte("demo-passkey"))
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.Config{
		Mode:          core.ModeSHIELD,
		FS:            fs,
		KDS:           service,
		Cache:         cache,
		WALBufferSize: 512, // the paper's WAL-write optimization
	}
	db, err := core.Open(dir+"/db", cfg, lsm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Plain key-value usage.
	if err := db.Put([]byte("user:1001"), []byte("alice")); err != nil {
		log.Fatal(err)
	}
	if err := db.Put([]byte("user:1002"), []byte("bob")); err != nil {
		log.Fatal(err)
	}
	if err := db.Delete([]byte("user:1002")); err != nil {
		log.Fatal(err)
	}

	v, err := db.Get([]byte("user:1001"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user:1001 = %s\n", v)

	// Batches commit atomically through one WAL record.
	batch := lsm.NewBatch()
	for i := 0; i < 100; i++ {
		batch.Put([]byte(fmt.Sprintf("order:%04d", i)), []byte("pending"))
	}
	if err := db.Write(batch, true); err != nil {
		log.Fatal(err)
	}

	// Range scans see a consistent snapshot.
	it, err := db.NewIter()
	if err != nil {
		log.Fatal(err)
	}
	count := 0
	for ok := it.SeekGE([]byte("order:")); ok && count < 5; ok = it.Next() {
		fmt.Printf("%s = %s\n", it.Key(), it.Value())
		count++
	}
	it.Close()

	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfiles in %s (all encrypted, headers carry DEK-IDs):\n", dir+"/db")
	entries, err := fs.List(dir + "/db")
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		fmt.Printf("  %-20s %6d bytes\n", e.Name, e.Size)
	}
}
