# Developer entry points. The only hard dependency is the Go toolchain;
# third-party linters are version-pinned below and fetched on demand by
# `go run`, so local runs and CI execute identical tool versions.

# Pinned linter versions. Bump deliberately, in this file only.
STATICCHECK_VERSION := 2024.1.1
GOVULNCHECK_VERSION := v1.1.3

.PHONY: all build test race vet shield-vet staticcheck govulncheck lint-extra fmt sim sim-long tamper-test replication-test fuzz bench-json server-test

all: build vet shield-vet test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

fmt:
	test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }

vet:
	go vet ./...

# The repo's own analysis suite (cmd/shield-vet), ten analyzers: nofs,
# syncdir, keyhygiene, lockio, errclass, authread (persistence and keys,
# DESIGN.md §9) plus lockorder, atomics, goroleak, noncebound (concurrency
# and crypto misuse, §14). Stdlib-only — no downloads, works offline.
# Packages analyze on a worker pool; output is identical at any -parallel.
shield-vet:
	go run ./cmd/shield-vet ./...

# Audit the suppression inventory: list every //shield:no* directive with
# its reason, failing on stale ones (directives that suppress no finding).
shield-vet-suppressions:
	go run ./cmd/shield-vet -suppressions ./...

# Seeded whole-stack fault simulation (cmd/shield-sim, DESIGN.md §10).
# `sim` is the quick local gate; `sim-long` widens the fault matrix with the
# disaggregated data path and bit-rot. Replay a failure with the exact
# command the reducer prints. SIM_SEEDS overrides the sweep width.
SIM_SEEDS ?= 50
sim:
	go run ./cmd/shield-sim -seeds $(SIM_SEEDS)

# Serving-layer gate (DESIGN.md §12): the RESP protocol package and the
# shield-server front-end under the race detector — pipelined clients,
# group-commit observation, protocol-error recovery, graceful drain — plus
# a serving-chaos sim sweep (connection storms, slow clients).
server-test:
	go test -race ./internal/resp/ ./internal/server/
	go run ./cmd/shield-sim -seeds 20 -connstorm

# Benchmark-regression profile (DESIGN.md §11, §16): a deterministic run of
# the parallel-compaction A/B pair, the engine group-commit profile, the
# YCSB-A/B/C pin-off/pin-on mixes, and the serving layer on the full SHIELD
# stack, emitting machine-readable BENCH_10.json and gating self-relative
# ratios (group-commit ratio, pinned read win, parallel speedup) against
# the committed BENCH_5.json baseline. CI uploads the report as an artifact
# so the bench trajectory is diffable across PRs. BENCH_SCALE shrinks/grows
# the op counts.
BENCH_SCALE ?= 0.5
bench-json:
	go run ./cmd/shield-bench -regress -scale $(BENCH_SCALE) -json BENCH_10.json -baseline BENCH_5.json

sim-long:
	go run ./cmd/shield-sim -seeds $(SIM_SEEDS)
	go run ./cmd/shield-sim -seeds $(SIM_SEEDS) -dstore
	go run ./cmd/shield-sim -seeds $(SIM_SEEDS) -bitrot
	go run ./cmd/shield-sim -seeds $(SIM_SEEDS) -dstore -bitrot

# Replication gate (DESIGN.md §15): the replica-set and orchestrator unit
# and integration tests under the race detector, the core quorum-loss
# degradation tests, then a nodeloss sim sweep — three storage nodes behind
# a quorum-2 replica set with offloaded compactions, replica kills
# overlapping in-flight writes, worker kills mid-lease, and the end-of-run
# byte-identical replica audit.
replication-test:
	go test -race ./internal/dstore/ ./internal/compactsvc/ ./internal/netretry/
	go test -race -run 'Replica|Quorum' ./internal/core/
	go run ./cmd/shield-sim -seeds $(SIM_SEEDS) -nodeloss

# Adversarial gate (DESIGN.md §13): seeded bit flips plus a manifest
# rollback every run. Tampering must surface only as typed integrity
# errors or quarantine-absence, the rollback must fail closed at reopen,
# and the end-of-run scrub audit must flag every still-tampered file.
tamper-test:
	go run ./cmd/shield-sim -seeds $(SIM_SEEDS) -bitrot -rollback

# Coverage-guided fuzzing of the sealed (format v2) parser: arbitrary
# bodies must round-trip or fail as integrity errors — never panic or
# misclassify. FUZZTIME bounds the run; CI uses a short burst, leave it
# running locally to dig deeper.
FUZZTIME ?= 30s
fuzz:
	go test -run='^$$' -fuzz=FuzzSealedOpen -fuzztime=$(FUZZTIME) ./internal/crypt/

# Third-party linters. These reach the network to fetch the pinned tool the
# first time; they are deliberately NOT part of `make all` so an offline
# checkout can still run the full local gate.
staticcheck:
	go run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

govulncheck:
	go run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

lint-extra: staticcheck govulncheck
