// Command shield-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	shield-bench -experiment fig7            # one experiment
//	shield-bench -experiment all -scale 0.5  # everything, half-size
//	shield-bench -list                       # show experiment ids
//	shield-bench -regress -json BENCH_5.json # scheduler regression profile
//	shield-bench -net :6399 -clients 16      # drive a running shield-server
//
// Each experiment prints the rows/series of the corresponding table or
// figure; see DESIGN.md for the id ↔ artifact mapping and EXPERIMENTS.md
// for recorded paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"os"

	"shield/internal/bench"
	"shield/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id (table1, table2, table3, fig4..fig24) or 'all'")
		scale      = flag.Float64("scale", 1.0, "operation-count multiplier")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		diskLat    = flag.Duration("disk-read-latency", 0, "emulated SSD read latency for monolith experiments (e.g. 60us)")
		regress    = flag.Bool("regress", false, "run the compaction-scheduler regression profile instead of an experiment")
		jsonOut    = flag.String("json", "", "with -regress: also write the machine-readable report to this file")
		baseline   = flag.String("baseline", "", "with -regress: gate self-relative metrics against this prior report (e.g. BENCH_5.json); exit 1 on regression")

		netAddr  = flag.String("net", "", "benchmark a running shield-server at this address instead of an in-process engine")
		clients  = flag.Int("clients", 8, "with -net: concurrent client connections")
		pipeline = flag.Int("pipeline", 16, "with -net: commands per pipelined round trip")
		netOps   = flag.Int("ops", 100000, "with -net: total command count across clients")
		valSize  = flag.Int("value-size", 100, "with -net: value size in bytes")
		readPct  = flag.Int("read-pct", 50, "with -net: GET percentage of the mix (0-100)")
	)
	flag.Parse()

	if *netAddr != "" {
		res, err := bench.RunNet(bench.NetWorkload{
			Addr:      *netAddr,
			Clients:   *clients,
			Pipeline:  *pipeline,
			NumOps:    int(float64(*netOps) * *scale),
			ValueSize: *valSize,
			ReadPct:   *readPct,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "shield-bench:", err)
			os.Exit(1)
		}
		fmt.Println(res)
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *regress {
		report, err := bench.RunRegression(*scale, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shield-bench:", err)
			os.Exit(1)
		}
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut) //shield:nofs the report goes to the host path the user passed via -json; the CLI mounts no vfs
			if err == nil {
				err = report.WriteJSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "shield-bench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		if *baseline != "" {
			f, err := os.Open(*baseline) //shield:nofs the baseline is a host path the user passed via -baseline; the CLI mounts no vfs
			if err != nil {
				fmt.Fprintln(os.Stderr, "shield-bench:", err)
				os.Exit(1)
			}
			base, err := bench.ReadRegressReport(f)
			f.Close() //nolint:errcheck // read-only file
			if err != nil {
				fmt.Fprintln(os.Stderr, "shield-bench:", err)
				os.Exit(1)
			}
			if fails := bench.CompareBaseline(report, base); len(fails) > 0 {
				for _, f := range fails {
					fmt.Fprintln(os.Stderr, "shield-bench: REGRESSION:", f)
				}
				os.Exit(1)
			}
			fmt.Printf("baseline gate vs %s: PASS\n", *baseline)
		}
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "usage: shield-bench -experiment <id>|all [-scale N] | shield-bench -regress [-json FILE]")
		os.Exit(2)
	}

	opt := experiments.Options{Scale: *scale, Out: os.Stdout, DiskReadLatency: *diskLat}
	var err error
	if *experiment == "all" {
		err = experiments.RunAll(opt)
	} else {
		err = experiments.Run(*experiment, opt)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "shield-bench:", err)
		os.Exit(1)
	}
}
