// Command shield-sim runs the seeded whole-stack fault simulation
// (internal/sim): a concurrent checked workload against the full SHIELD
// stack while a nemesis injects disk-full, network faults, KDS and
// storage-node kills, bit-rot, manifest rollbacks, and power-loss crashes.
//
// Usage:
//
//	shield-sim -seeds 50                 # sweep seeds 1..50
//	shield-sim -seed 1337 -v             # replay one seed, verbose
//	shield-sim -seed 1337 -events 3      # replay a reduced schedule prefix
//	shield-sim -seeds 20 -dstore -bitrot # widen the fault matrix
//	shield-sim -seeds 20 -connstorm      # add RESP serving-layer chaos
//	shield-sim -seeds 20 -bitrot -rollback # adversarial tamper + rollback
//	shield-sim -seeds 20 -nodeloss       # replicated fleet: replica + worker kills
//
// Every run prints its schedule hash; the same seed and flags produce the
// same hash (the reproducibility witness). On failure the reducer shrinks
// the schedule to the shortest still-failing prefix and prints the exact
// replay command; the exit code is nonzero.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"shield/internal/sim"
)

func main() {
	var (
		seeds     = flag.Int("seeds", 0, "sweep seeds 1..N (mutually exclusive with -seed)")
		seed      = flag.Uint64("seed", 0, "run exactly this seed")
		ops       = flag.Int("ops", 600, "workload operations per run")
		workers   = flag.Int("workers", 4, "concurrent workload goroutines")
		events    = flag.Int("events", 0, "cap the nemesis schedule to its first N events (0 = full, negative = none)")
		dstore    = flag.Bool("dstore", false, "route the data path through a disaggregated storage node")
		bitrot    = flag.Bool("bitrot", false, "enable bit-rot (tamper) events")
		rollback  = flag.Bool("rollback", false, "enable the manifest-rollback nemesis (adversary restores a stale durable image)")
		connstorm = flag.Bool("connstorm", false, "front the engine with a RESP server and add connection-storm/slow-client events")
		nodeloss  = flag.Bool("nodeloss", false, "replicate the data path across three storage nodes (quorum 2) with offloaded compactions; kill replicas mid-write and workers mid-lease")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-run watchdog")
		verbose   = flag.Bool("v", false, "verbose event and engine logging")
		reduce    = flag.Bool("reduce", true, "on failure, shrink to the shortest failing schedule prefix")
	)
	flag.Parse()
	if (*seeds == 0) == (*seed == 0) {
		fmt.Fprintln(os.Stderr, "shield-sim: pass exactly one of -seeds N or -seed S")
		os.Exit(2)
	}

	cfgFor := func(s uint64) sim.Config {
		cfg := sim.Config{
			Seed:      s,
			Ops:       *ops,
			Workers:   *workers,
			MaxEvents: *events,
			Dstore:    *dstore,
			BitRot:    *bitrot,
			Rollback:  *rollback,
			ConnStorm: *connstorm,
			NodeLoss:  *nodeloss,
			Timeout:   *timeout,
		}
		if *verbose {
			cfg.Logf = func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			}
		}
		return cfg
	}

	run := func(s uint64) bool {
		start := time.Now()
		r := sim.Run(cfgFor(s))
		status := "ok"
		if r.Failed() {
			status = "FAIL"
		}
		fmt.Printf("seed %-6d %-4s hash=%s events=%d acked=%d failed-writes=%d reads=%d scans=%d crashes=%d reopens=%d tainted=%v (%v)\n",
			s, status, r.Hash, len(r.Plan), r.Acked, r.FailedWrites, r.Reads, r.Scans,
			r.Crashes, r.Reopens, r.Tainted, time.Since(start).Round(time.Millisecond))
		if !r.Failed() {
			return true
		}
		fmt.Printf("\nschedule (hash %s):\n  %s\n", r.Hash, strings.Join(r.Plan, "\n  "))
		fmt.Println("\nviolations:")
		for _, v := range r.Violations {
			fmt.Printf("  %s\n", v)
		}
		fmt.Println("\nnotes:")
		for _, n := range r.Notes {
			fmt.Printf("  %s\n", n)
		}
		if *reduce {
			fmt.Println("\nreducing to the shortest failing schedule prefix...")
			if k, min := sim.Reduce(cfgFor(s), 2); k >= 0 {
				fmt.Printf("minimal failing prefix: %d event(s):\n  %s\n", k, strings.Join(min.Plan, "\n  "))
				evFlag := k
				if k == 0 {
					evFlag = -1 // 0 means "full schedule" to the flag
				}
				fmt.Printf("\nreplay: go run ./cmd/shield-sim -seed=%d -ops=%d -workers=%d -events=%d%s%s%s%s%s\n",
					s, *ops, *workers, evFlag, boolFlag(" -dstore", *dstore), boolFlag(" -bitrot", *bitrot), boolFlag(" -rollback", *rollback), boolFlag(" -connstorm", *connstorm), boolFlag(" -nodeloss", *nodeloss))
			} else {
				fmt.Println("failure did not reproduce during reduction (interleaving-dependent); replay the full seed:")
				fmt.Printf("replay: go run ./cmd/shield-sim -seed=%d -ops=%d -workers=%d%s%s%s%s%s\n",
					s, *ops, *workers, boolFlag(" -dstore", *dstore), boolFlag(" -bitrot", *bitrot), boolFlag(" -rollback", *rollback), boolFlag(" -connstorm", *connstorm), boolFlag(" -nodeloss", *nodeloss))
			}
		}
		return false
	}

	ok := true
	if *seed != 0 {
		ok = run(*seed)
	} else {
		for s := uint64(1); s <= uint64(*seeds); s++ {
			if !run(s) {
				ok = false
				break
			}
		}
	}
	if !ok {
		os.Exit(1)
	}
}

func boolFlag(s string, on bool) string {
	if on {
		return s
	}
	return ""
}
