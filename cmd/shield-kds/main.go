// Command shield-kds runs a standalone Key Distribution Service node.
//
// Several shield-kds processes fronting the same deployment model the
// decentralized replica set; clients (kds.NewClient) fail over between
// them. Servers named with -authorize may create and fetch DEKs; everything
// else is denied.
//
// Usage:
//
//	shield-kds -addr :7601 -authorize compute-1,worker-1 -latency 2750us
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"shield/internal/kds"
	"shield/internal/vfs"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7601", "listen address")
		authorize = flag.String("authorize", "", "comma-separated server IDs allowed to request DEKs")
		latency   = flag.Duration("latency", 0, "synthetic per-request service latency (e.g. 2750us to mimic SSToolkit)")
		maxFetch  = flag.Int("max-fetches", 1, "fetches allowed per DEK-ID for non-creators (0 = unlimited; 1 = one-time provisioning)")
		storePath = flag.String("store", "", "encrypted snapshot path for durable key state (empty = in-memory only)")
		masterKey = flag.String("master-key", "", "master secret sealing the snapshot (required with -store)")
	)
	flag.Parse()

	policy := kds.Policy{MaxFetches: *maxFetch, Latency: *latency}
	type enrollable interface {
		Authorize(string)
		Stats() (int64, int64, int64)
	}
	var store kds.Backend
	var admin enrollable
	if *storePath != "" {
		if *masterKey == "" {
			log.Fatal("-store requires -master-key")
		}
		ps, err := kds.OpenPersistentStore(vfs.NewOS(), *storePath, []byte(*masterKey), policy)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("durable key store at %s", *storePath)
		store, admin = ps, ps
	} else {
		ms := kds.NewStore(policy)
		store, admin = ms, ms
	}
	for _, id := range strings.Split(*authorize, ",") {
		if id = strings.TrimSpace(id); id != "" {
			admin.Authorize(id)
			log.Printf("authorized server %q", id)
		}
	}

	srv, err := kds.NewServer(store, *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("shield-kds listening on %s (latency=%v, max-fetches=%d)", srv.Addr(), *latency, *maxFetch)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(30 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			log.Print("shutting down")
			srv.Close()
			return
		case <-tick.C:
			issued, fetched, denied := admin.Stats()
			fmt.Printf("stats: issued=%d fetched=%d denied=%d\n", issued, fetched, denied)
		}
	}
}
