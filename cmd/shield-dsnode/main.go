// Command shield-dsnode runs a storage node: the dstore remote-file service
// plus (optionally) an offloaded-compaction worker co-located with it.
//
// The compaction worker holds its own KDS identity: it resolves input-file
// DEKs via the DEK-IDs in file headers and encrypts its outputs under fresh
// DEKs, exactly as in the paper's offloaded-compaction case study. The
// worker dials the compute node's compaction orchestrator and polls for
// leased jobs, so any number of storage nodes can serve one compute node
// without compute-side reconfiguration.
//
// Usage:
//
//	shield-dsnode -addr :7700 -dir /data/shield \
//	  -orchestrator 10.0.0.4:7701 -kds 10.0.0.5:7601 -server-id worker-1 \
//	  -latency 200us -bandwidth 131072000
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"shield/internal/compactsvc"
	"shield/internal/core"
	"shield/internal/dstore"
	"shield/internal/kds"
	"shield/internal/lsm"
	"shield/internal/seccache"
	"shield/internal/vfs"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7700", "dstore listen address")
		dir          = flag.String("dir", "", "backing directory (empty = in-memory)")
		latency      = flag.Duration("latency", 0, "emulated per-op link latency")
		bandwidth    = flag.Int64("bandwidth", 0, "emulated link bandwidth, bytes/sec (0 = unlimited)")
		orchestrator = flag.String("orchestrator", "", "compute node's compaction orchestrator to poll for offloaded jobs")
		kdsAddrs     = flag.String("kds", "", "comma-separated KDS replica addresses (enables SHIELD-aware compaction)")
		serverID     = flag.String("server-id", "dsnode-1", "this node's KDS identity")
		cachePath    = flag.String("dek-cache", "", "secure DEK cache path for the worker (empty = none)")
		cachePass    = flag.String("dek-passkey", "", "passkey sealing the DEK cache")
	)
	flag.Parse()

	var base vfs.FS
	if *dir == "" {
		base = vfs.NewMem()
		log.Print("backing store: in-memory")
	} else {
		if err := vfs.NewOS().MkdirAll(*dir); err != nil {
			log.Fatal(err)
		}
		base = vfs.NewOS()
		log.Printf("backing store: %s", *dir)
	}

	storage, err := dstore.NewServer(base, *addr, *latency, *bandwidth)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("dstore listening on %s (latency=%v bandwidth=%dB/s)", storage.Addr(), *latency, *bandwidth)

	var worker *compactsvc.Worker
	if *orchestrator != "" {
		var wrapper lsm.FileWrapper = lsm.NopWrapper{}
		if *kdsAddrs != "" {
			client := kds.NewClient(*serverID, splitComma(*kdsAddrs)...)
			cfg := core.Config{Mode: core.ModeSHIELD, FS: storage.LocalFS(), KDS: client}
			if *cachePath != "" {
				cache, err := seccache.Open(base, *cachePath, []byte(*cachePass))
				if err != nil {
					log.Fatal(err)
				}
				cfg.Cache = cache
			}
			wrapper, err = cfg.BuildWrapper()
			if err != nil {
				log.Fatal(err)
			}
		}
		worker = compactsvc.NewWorker(storage.LocalFS(), wrapper, *serverID, *orchestrator, compactsvc.WorkerConfig{})
		log.Printf("compaction worker polling %s (identity %q)", *orchestrator, *serverID)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	if worker != nil {
		worker.Close()
	}
	storage.Close()
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
