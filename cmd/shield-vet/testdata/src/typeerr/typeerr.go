// Package typeerr is a shield-vet driver-test fixture that does not
// type-check: the driver must refuse to analyze it and exit 2.
package typeerr

var oops int = "not an int"
