// Package jsonfix is a shield-vet driver-test fixture: two deterministic
// findings (nofs) for the -json golden-file test and the parallel-vs-serial
// equality test.
package jsonfix

import "os"

func readRaw(name string) ([]byte, error) {
	return os.ReadFile(name)
}

func dropRaw(name string) error {
	return os.Remove(name)
}
