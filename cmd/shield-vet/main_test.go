package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runVet invokes the driver exactly as main does, capturing both streams.
func runVet(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUnknownAnalyzerExits2(t *testing.T) {
	code, _, stderr := runVet(t, "-only", "nosuch", "./testdata/src/jsonfix")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, `unknown analyzer "nosuch"`) {
		t.Fatalf("stderr = %q, want unknown-analyzer message", stderr)
	}
}

func TestListNamesEveryAnalyzer(t *testing.T) {
	code, stdout, _ := runVet(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{
		"nofs", "syncdir", "keyhygiene", "lockio", "errclass", "authread",
		"lockorder", "atomics", "goroleak", "noncebound",
	} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing analyzer %q", name)
		}
	}
	if n := len(strings.Split(strings.TrimSpace(stdout), "\n")); n != 10 {
		t.Errorf("-list printed %d lines, want 10", n)
	}
}

// TestJSONGolden pins the machine-readable schema the CI annotation step
// consumes: version, package count, analyzer list, and module-relative
// finding paths, byte-for-byte.
func TestJSONGolden(t *testing.T) {
	code, stdout, stderr := runVet(t, "-q", "-json", "./testdata/src/jsonfix")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (fixture has findings); stderr: %s", code, stderr)
	}
	golden := filepath.Join("testdata", "jsonfix.golden.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if stdout != string(want) {
		t.Errorf("-json output differs from %s:\n got: %s\nwant: %s", golden, stdout, want)
	}
	// The golden file itself must stay valid JSON with the documented shape.
	var rep struct {
		Version  int `json:"version"`
		Findings []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(want, &rep); err != nil {
		t.Fatalf("golden is not valid JSON: %v", err)
	}
	if rep.Version != 1 || len(rep.Findings) == 0 {
		t.Fatalf("golden shape unexpected: %+v", rep)
	}
	for _, f := range rep.Findings {
		if filepath.IsAbs(f.File) || !strings.HasPrefix(f.File, "cmd/shield-vet/testdata/") {
			t.Errorf("finding path %q is not module-relative", f.File)
		}
	}
}

// TestJSONCleanEmitsEmptyFindings: a clean run must produce findings: [],
// never null — the CI jq step iterates it unconditionally.
func TestJSONCleanEmitsEmptyFindings(t *testing.T) {
	code, stdout, stderr := runVet(t, "-q", "-json", "../../internal/vet/vetutil")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, `"findings": []`) {
		t.Errorf("clean -json output must contain \"findings\": [], got: %s", stdout)
	}
}

func TestTypeErrorExits2(t *testing.T) {
	code, _, stderr := runVet(t, "-q", "./testdata/src/typeerr")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "type error") || !strings.Contains(stderr, "not analyzed") {
		t.Fatalf("stderr = %q, want type-error refusal", stderr)
	}
}

// TestParallelMatchesSerial: the worker pool must not change the findings
// or their order — stdout is byte-identical at any parallelism.
func TestParallelMatchesSerial(t *testing.T) {
	dirs := []string{"./testdata/src/jsonfix", "../../internal/vet/vetutil", "../../internal/resp"}
	serialCode, serialOut, _ := runVet(t, append([]string{"-q", "-parallel", "1"}, dirs...)...)
	for _, workers := range []string{"2", "8"} {
		code, out, _ := runVet(t, append([]string{"-q", "-parallel", workers}, dirs...)...)
		if code != serialCode {
			t.Errorf("-parallel %s exit = %d, serial = %d", workers, code, serialCode)
		}
		if out != serialOut {
			t.Errorf("-parallel %s stdout differs from serial:\n got: %s\nwant: %s", workers, out, serialOut)
		}
	}
	if serialCode != 1 {
		t.Errorf("fixture set should have findings; exit = %d", serialCode)
	}
}

// TestSuppressionsAuditListsDirectives: the audit lists directives with
// reasons and exits 0 when none are stale.
func TestSuppressionsAuditClean(t *testing.T) {
	code, stdout, stderr := runVet(t, "-q", "-suppressions", "../../internal/vet/load")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s\n%s", code, stderr, stdout)
	}
	if !strings.Contains(stdout, "//shield:nofs") || strings.Contains(stdout, "STALE") {
		t.Errorf("audit output unexpected:\n%s", stdout)
	}
}
