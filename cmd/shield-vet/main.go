// Command shield-vet statically enforces SHIELD's durability,
// encryption-boundary, key-hygiene, and concurrency invariants across this
// repository.
//
// Usage:
//
//	go run ./cmd/shield-vet ./...            # whole module (CI gate)
//	go run ./cmd/shield-vet ./internal/kds   # one package
//	go run ./cmd/shield-vet -only syncdir,atomics ./...
//	go run ./cmd/shield-vet -json ./...      # machine-readable findings
//	go run ./cmd/shield-vet -suppressions ./... # audit //shield:no* directives
//	go run ./cmd/shield-vet -list            # describe the suite
//
// Exit status is 1 if any analyzer reports a finding (or, under
// -suppressions, if any directive is stale or missing its reason), 2 on
// usage errors, load errors, or packages that fail to type-check — a
// half-type-checked package silently weakens every analyzer, so it is a
// hard error, not a warning.
//
// Packages are loaded and analyzed by a bounded worker pool (-parallel,
// default GOMAXPROCS); findings are sorted before printing, so the output
// is byte-identical at every parallelism level.
//
// With -json, findings are emitted on stdout as one JSON document:
//
//	{"version": 1, "packages": N, "analyzers": [...],
//	 "findings": [{"file": "internal/...", "line": L, "col": C,
//	               "analyzer": "...", "message": "..."}]}
//
// File paths are module-relative, which is what the CI annotation step
// feeds to GitHub. The text format is unchanged: file:line:col: [analyzer]
// message.
//
// Suppressions: a finding is silenced by //shield:no<analyzer> <reason> on
// its line, the line above, or in the enclosing function's doc comment. The
// justification is mandatory — a bare directive does not suppress.
// -suppressions lists every directive with its position and reason and
// fails on stale ones (directives that no longer suppress anything), so
// dead annotations cannot accumulate.
//
// The tool is self-contained (stdlib go/ast + go/types with the source
// importer); it needs no network, no GOPATH, and no pre-built export data,
// so it runs identically in CI and on laptops. See DESIGN.md §9 and §14 for
// each analyzer's invariant and origin.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"shield/internal/vet/analysis"
	"shield/internal/vet/analyzers/all"
	"shield/internal/vet/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// finding is one diagnostic, carrying both the raw (absolute) position for
// text output and the module-relative path for JSON.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`

	text string // pre-rendered "abs:line:col: [analyzer] message"
}

// jsonReport is the -json document. Bump Version on breaking changes; the
// CI annotation step keys on it.
type jsonReport struct {
	Version   int       `json:"version"`
	Packages  int       `json:"packages"`
	Analyzers []string  `json:"analyzers"`
	Findings  []finding `json:"findings"`
}

// pkgResult is everything one worker produced for one package directory.
type pkgResult struct {
	findings []finding
	loadErr  error
	typeErrs []error
	pkgPath  string
	pkg      *load.Package
	used     []usedDirective
}

type usedDirective struct {
	file string
	line int
	name string
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("shield-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		only         = fs.String("only", "", "comma-separated subset of analyzers to run")
		list         = fs.Bool("list", false, "list analyzers and exit")
		quiet        = fs.Bool("q", false, "suppress the summary line")
		jsonOut      = fs.Bool("json", false, "emit findings as JSON on stdout")
		suppressions = fs.Bool("suppressions", false, "audit //shield:no* directives: list all, fail on stale or reasonless ones")
		parallel     = fs.Int("parallel", runtime.GOMAXPROCS(0), "number of packages loaded and analyzed concurrently (1 = serial)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// The suppression audit always runs the full suite: a directive for an
	// analyzer excluded by -only would be indistinguishable from stale.
	suite := all.Analyzers
	if *only != "" && !*suppressions {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "shield-vet: unknown analyzer %q\n", name)
				return 2
			}
			suite = append(suite, a)
		}
	}
	if *list {
		for _, a := range all.Analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := load.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "shield-vet:", err)
		return 2
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "shield-vet:", err)
		return 2
	}

	results := analyzeAll(loader, dirs, suite, *parallel, *suppressions)

	// Load and type errors are hard failures: a package that does not
	// type-check is silently half-analyzed, which is worse than failing.
	loadFailed := false
	for _, r := range results {
		if r.loadErr != nil {
			fmt.Fprintln(stderr, "shield-vet:", r.loadErr)
			loadFailed = true
		}
		for _, terr := range r.typeErrs {
			fmt.Fprintf(stderr, "shield-vet: %s: type error: %v\n", r.pkgPath, terr)
			loadFailed = true
		}
	}
	if loadFailed {
		fmt.Fprintln(stderr, "shield-vet: load errors: packages that fail to type-check are not analyzed")
		return 2
	}

	if *suppressions {
		return auditSuppressions(loader, results, stdout, stderr, *quiet)
	}

	var findings []finding
	for _, r := range results {
		findings = append(findings, r.findings...)
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].text < findings[j].text })

	if *jsonOut {
		rep := jsonReport{Version: 1, Packages: len(dirs), Findings: findings}
		for _, a := range suite {
			rep.Analyzers = append(rep.Analyzers, a.Name)
		}
		if rep.Findings == nil {
			rep.Findings = []finding{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "shield-vet:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.text)
		}
	}

	if len(findings) > 0 {
		if !*quiet {
			fmt.Fprintf(stderr, "shield-vet: %d finding(s) across %d package(s)\n", len(findings), len(dirs))
		}
		return 1
	}
	if !*quiet {
		fmt.Fprintf(stderr, "shield-vet: clean (%d packages, %d analyzers)\n", len(dirs), len(suite))
	}
	return 0
}

// analyzeAll fans dirs out over a bounded worker pool. Results land in a
// slot per directory, so ordering never depends on scheduling.
func analyzeAll(loader *load.Loader, dirs []string, suite []*analysis.Analyzer, workers int, trackSuppressions bool) []pkgResult {
	if workers < 1 {
		workers = 1
	}
	if workers > len(dirs) {
		workers = len(dirs)
	}
	results := make([]pkgResult, len(dirs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = analyzeOne(loader, dirs[i], suite, trackSuppressions)
			}
		}()
	}
	for i := range dirs {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

func analyzeOne(loader *load.Loader, dir string, suite []*analysis.Analyzer, trackSuppressions bool) pkgResult {
	var r pkgResult
	p, err := loader.LoadDir(dir)
	if err != nil {
		r.loadErr = err
		return r
	}
	r.pkg = p
	r.pkgPath = p.Path
	r.typeErrs = p.TypeErrors
	if len(r.typeErrs) > 0 {
		return r
	}
	for _, a := range suite {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Types,
			TypesInfo: p.Info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			pos := p.Fset.Position(d.Pos)
			r.findings = append(r.findings, finding{
				File:     relModule(loader, pos.Filename),
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: name,
				Message:  d.Message,
				text:     fmt.Sprintf("%s: [%s] %s", pos, name, d.Message),
			})
		}
		if trackSuppressions {
			pass.SuppressionUsed = func(file string, line int, dname string) {
				r.used = append(r.used, usedDirective{file: file, line: line, name: dname})
			}
		}
		if err := a.Run(pass); err != nil {
			r.loadErr = fmt.Errorf("%s on %s: %w", a.Name, p.Path, err)
			return r
		}
	}
	return r
}

// relModule renders file relative to the module root when it is inside it.
func relModule(loader *load.Loader, file string) string {
	if rel, err := filepath.Rel(loader.ModuleDir, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

// auditSuppressions lists every //shield:no* directive and fails on the
// stale or reasonless ones. The full suite has already run with
// suppression tracking; a directive that never fired suppresses nothing and
// must be deleted — dead annotations rot into misdocumentation.
func auditSuppressions(loader *load.Loader, results []pkgResult, stdout, stderr io.Writer, quiet bool) int {
	known := map[string]bool{}
	for _, a := range all.Analyzers {
		known[analysis.DirectiveName(a.Name)] = true
	}
	used := map[usedDirective]bool{}
	for _, r := range results {
		for _, u := range r.used {
			used[u] = true
		}
	}

	type row struct {
		d     analysis.Directive
		stale bool
		why   string
	}
	var rows []row
	bad := 0
	for _, r := range results {
		if r.pkg == nil {
			continue
		}
		for _, d := range analysis.ScanDirectives(r.pkg.Fset, r.pkg.Files) {
			rw := row{d: d}
			switch {
			case !known[d.Name]:
				rw.stale = true
				rw.why = "unknown analyzer"
			case d.Reason == "":
				rw.stale = true
				rw.why = "missing reason (does not suppress)"
			case !used[usedDirective{file: d.File, line: d.Line, name: d.Name}]:
				rw.stale = true
				rw.why = "stale: suppresses no finding"
			}
			if rw.stale {
				bad++
			}
			rows = append(rows, rw)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].d.File != rows[j].d.File {
			return rows[i].d.File < rows[j].d.File
		}
		return rows[i].d.Line < rows[j].d.Line
	})
	for _, rw := range rows {
		mark := "ok   "
		if rw.stale {
			mark = "STALE"
		}
		reason := rw.d.Reason
		if reason == "" {
			reason = "(no reason)"
		}
		fmt.Fprintf(stdout, "%s %s:%d: //shield:%s %s\n", mark, relModule(loader, rw.d.File), rw.d.Line, rw.d.Name, reason)
		if rw.stale {
			fmt.Fprintf(stdout, "      ^ %s\n", rw.why)
		}
	}
	if !quiet {
		fmt.Fprintf(stderr, "shield-vet: %d suppression(s), %d stale\n", len(rows), bad)
	}
	if bad > 0 {
		return 1
	}
	return 0
}
