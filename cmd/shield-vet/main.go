// Command shield-vet statically enforces SHIELD's durability,
// encryption-boundary, and key-hygiene invariants across this repository.
//
// Usage:
//
//	go run ./cmd/shield-vet ./...          # whole module (CI gate)
//	go run ./cmd/shield-vet ./internal/kds # one package
//	go run ./cmd/shield-vet -only syncdir,keyhygiene ./...
//	go run ./cmd/shield-vet -list          # describe the suite
//
// Exit status is 1 if any analyzer reports a finding, 2 on usage or load
// errors. Findings are printed as file:line:col: [analyzer] message.
//
// Suppressions: a finding is silenced by //shield:no<analyzer> <reason> on
// its line, the line above, or in the enclosing function's doc comment. The
// justification is mandatory — a bare directive does not suppress.
//
// The tool is self-contained (stdlib go/ast + go/types with the source
// importer); it needs no network, no GOPATH, and no pre-built export data,
// so it runs identically in CI and on laptops. See DESIGN.md §9 for each
// analyzer's invariant and origin.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"shield/internal/vet/analysis"
	"shield/internal/vet/analyzers/all"
	"shield/internal/vet/load"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		only  = flag.String("only", "", "comma-separated subset of analyzers to run")
		list  = flag.Bool("list", false, "list analyzers and exit")
		quiet = flag.Bool("q", false, "suppress the summary line")
	)
	flag.Parse()

	suite := all.Analyzers
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "shield-vet: unknown analyzer %q\n", name)
				return 2
			}
			suite = append(suite, a)
		}
	}
	if *list {
		for _, a := range all.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := load.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "shield-vet:", err)
		return 2
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shield-vet:", err)
		return 2
	}

	var findings []string
	for _, dir := range dirs {
		p, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shield-vet:", err)
			return 2
		}
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "shield-vet: %s: type error: %v\n", p.Path, terr)
		}
		for _, a := range suite {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Types,
				TypesInfo: p.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				pos := p.Fset.Position(d.Pos)
				findings = append(findings, fmt.Sprintf("%s: [%s] %s", pos, name, d.Message))
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "shield-vet: %s on %s: %v\n", a.Name, p.Path, err)
				return 2
			}
		}
	}

	sort.Strings(findings)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "shield-vet: %d finding(s) across %d package(s)\n", len(findings), len(dirs))
		}
		return 1
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "shield-vet: clean (%d packages, %d analyzers)\n", len(dirs), len(suite))
	}
	return 0
}
