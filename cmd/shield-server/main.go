// Command shield-server serves a SHIELD-encrypted key-value store over the
// RESP (Redis) wire protocol.
//
// The keyspace is hash-partitioned across -shards independent engine
// instances — each with its own WAL, commit loop, compaction scheduler, and
// block cache — so shards never contend on engine locks. All shards share
// one KDS client (in-process by default; -kds points at external replicas).
//
// Usage:
//
//	shield-server                               # 4 in-memory SHIELD shards on :6399
//	shield-server -dir /data/kv -shards 8       # persistent, 8 shards
//	shield-server -mode none -addr :6400        # plaintext baseline
//	shield-server -kds host1:7001,host2:7001    # external KDS replica set
//
// Then: redis-cli -p 6399 SET k v / GET k / DEL k / INFO.
//
// Persistent encrypted deployments (-dir with -mode shield or encfs) must
// survive a restart, so key material cannot live only in process memory:
// the in-process KDS persists its key database to <dir>/kds.state, every
// shard shares a passkey-sealed DEK cache at <dir>/dek-cache.bin, and the
// EncFS instance DEK is derived from the passkey and a per-directory salt.
// All three are sealed under -passkey; the default is a development key,
// so real deployments should set their own (or run an external -kds).
package main

import (
	"crypto/rand"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"shield/internal/core"
	"shield/internal/crypt"
	"shield/internal/kds"
	"shield/internal/lsm"
	"shield/internal/seccache"
	"shield/internal/server"
	"shield/internal/vfs"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:6399", "listen address")
		nShards  = flag.Int("shards", 4, "number of engine shards (keys are hash-partitioned)")
		dir      = flag.String("dir", "", "data directory (shard-N subdirs); empty runs in-memory")
		mode     = flag.String("mode", "shield", "encryption mode: none, encfs, shield")
		kdsAddrs = flag.String("kds", "", "comma-separated external KDS replica addresses; empty runs an in-process KDS")
		sync     = flag.Bool("sync", true, "fsync the WAL on every acknowledged write batch (group commit coalesces the syncs)")
		memtable = flag.Int64("memtable", 4<<20, "per-shard memtable size in bytes")
		cache    = flag.Int64("block-cache", 8<<20, "per-shard decrypted-block cache in bytes; negative disables")
		pipeline = flag.Int("max-pipeline", 128, "max commands executed per reader cycle")
		idle     = flag.Duration("idle-timeout", 5*time.Minute, "drop a connection with no complete command for this long")
		passkey  = flag.String("passkey", "shield-dev-passkey", "seals persistent key material (KDS snapshot, DEK cache, EncFS DEK derivation)")
	)
	flag.Parse()

	if err := run(*addr, *nShards, *dir, *mode, *kdsAddrs, *sync, *memtable, *cache, *pipeline, *idle, *passkey); err != nil {
		fmt.Fprintln(os.Stderr, "shield-server:", err)
		os.Exit(1)
	}
}

func run(addr string, nShards int, dir, mode, kdsAddrs string, sync bool, memtable, cache int64, pipeline int, idle time.Duration, passkey string) error {
	if nShards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", nShards)
	}

	persistent := dir != ""
	fs := vfs.NewOS()
	if persistent {
		if err := fs.MkdirAll(dir); err != nil {
			return fmt.Errorf("create %s: %w", dir, err)
		}
	}

	cfg := core.Config{WALBufferSize: 512}
	switch mode {
	case "none":
		cfg.Mode = core.ModeNone
	case "encfs":
		cfg.Mode = core.ModeEncFS
		dek, err := encfsDEK(fs, dir, passkey)
		if err != nil {
			return err
		}
		cfg.InstanceDEK = dek
	case "shield":
		cfg.Mode = core.ModeSHIELD
	default:
		return fmt.Errorf("unknown -mode %q (want none, encfs, shield)", mode)
	}

	// One KDS client shared by every shard: either a network client over
	// external replicas, or an in-process service for single-node use. The
	// in-process key database and the shared DEK cache persist under -dir so
	// a restarted server can still decrypt its own files (DefaultPolicy is
	// one-time provisioning: without the cache, re-fetching a DEK the first
	// boot already consumed would be denied).
	if cfg.Mode == core.ModeSHIELD {
		if kdsAddrs != "" {
			client := kds.NewClient("shield-server", strings.Split(kdsAddrs, ",")...)
			defer client.Close() //nolint:errcheck
			cfg.KDS = client
		} else if persistent {
			store, err := kds.OpenPersistentStore(fs, filepath.Join(dir, "kds.state"), []byte(passkey), kds.DefaultPolicy())
			if err != nil {
				return fmt.Errorf("open KDS state (wrong -passkey?): %w", err)
			}
			cfg.KDS = kds.NewLocal(store, "shield-server")
		} else {
			cfg.KDS = kds.NewLocal(kds.NewStore(kds.DefaultPolicy()), "shield-server")
		}
		if persistent {
			sc, err := seccache.Open(fs, filepath.Join(dir, "dek-cache.bin"), []byte(passkey))
			if err != nil {
				return fmt.Errorf("open DEK cache (wrong -passkey?): %w", err)
			}
			cfg.Cache = sc
		}
	}

	var shards []server.Engine
	var dbs []*lsm.DB
	closeAll := func() {
		for i, db := range dbs {
			if err := db.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "shield-server: close shard %d: %v\n", i, err)
			}
		}
	}
	for i := 0; i < nShards; i++ {
		shardCfg := cfg
		shardDir := fmt.Sprintf("shard-%d", i)
		if persistent {
			shardCfg.FS = fs
			shardDir = filepath.Join(dir, shardDir)
			if err := shardCfg.FS.MkdirAll(shardDir); err != nil {
				closeAll()
				return fmt.Errorf("create %s: %w", shardDir, err)
			}
		} else {
			shardCfg.FS = vfs.NewMem()
		}
		db, err := core.Open(shardDir, shardCfg, lsm.Options{
			MemtableSize:   memtable,
			BlockCacheSize: cache,
		})
		if err != nil {
			closeAll()
			return fmt.Errorf("open shard %d: %w", i, err)
		}
		dbs = append(dbs, db)
		shards = append(shards, db)
	}
	defer closeAll()

	srv, err := server.New(server.Config{
		Shards:      shards,
		Sync:        &sync,
		MaxPipeline: pipeline,
		IdleTimeout: idle,
		Logger: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	if err := srv.Listen(addr); err != nil {
		return err
	}

	// SIGINT/SIGTERM: stop accepting, drain in-flight pipelines, then the
	// deferred closeAll flushes and shuts the shard engines down.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr, "shield-server: %v: draining\n", sig)
		srv.Close() //nolint:errcheck // Close only returns nil
	}()

	fmt.Fprintf(os.Stderr, "shield-server: mode=%s shards=%d sync=%v serving on %s\n",
		mode, nShards, sync, srv.Addr())
	return srv.Serve()
}

// pbkdf2Iter matches the secure cache's work factor (seccache.pbkdf2Iter).
const pbkdf2Iter = 4096

// encfsDEK produces the EncFS instance DEK. In-memory servers get a fresh
// random key; persistent ones derive it from the passkey and a random
// per-directory salt created on first boot, so a restart derives the same
// key and can reopen its own files. The salt is not secret — the passkey is
// the credential.
func encfsDEK(fs vfs.FS, dir, passkey string) (crypt.DEK, error) {
	if dir == "" {
		dek, err := crypt.NewDEK()
		if err != nil {
			return crypt.DEK{}, fmt.Errorf("generate instance DEK: %w", err)
		}
		return dek, nil
	}
	saltPath := filepath.Join(dir, "encfs.salt")
	salt, err := vfs.ReadFile(fs, saltPath)
	switch {
	case errors.Is(err, vfs.ErrNotFound):
		salt = make([]byte, 16)
		if _, err := rand.Read(salt); err != nil {
			return crypt.DEK{}, fmt.Errorf("generate EncFS salt: %w", err)
		}
		if err := vfs.WriteFile(fs, saltPath, salt); err != nil {
			return crypt.DEK{}, fmt.Errorf("write %s: %w", saltPath, err)
		}
		if err := fs.SyncDir(dir); err != nil {
			return crypt.DEK{}, fmt.Errorf("sync %s: %w", dir, err)
		}
	case err != nil:
		return crypt.DEK{}, fmt.Errorf("read %s: %w", saltPath, err)
	}
	raw := crypt.PBKDF2SHA256([]byte(passkey), salt, pbkdf2Iter, crypt.KeySize)
	defer crypt.Zeroize(raw)
	return crypt.DEKFromBytes(raw)
}
