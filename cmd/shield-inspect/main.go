// Command shield-inspect examines a database directory from the storage
// administrator's (or auditor's) point of view: it classifies files, reads
// the plaintext headers, reports DEK-IDs, and — crucially — scans the raw
// bytes for plaintext leakage, which is the on-disk confidentiality check
// of the threat model.
//
// Usage:
//
//	shield-inspect -dir /var/lib/shield/db
//	shield-inspect -dir /var/lib/shield/db -grep "secret-substring"
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"shield/internal/core"
	"shield/internal/vfs"
)

func main() {
	var (
		dir  = flag.String("dir", "", "database directory")
		grep = flag.String("grep", "", "scan raw file bytes for this plaintext substring")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: shield-inspect -dir <db-dir> [-grep <plaintext>]")
		os.Exit(2)
	}

	fs := vfs.NewOS()
	entries, err := fs.List(*dir)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-20s %-10s %-12s %-30s\n", "FILE", "SIZE", "KIND", "ENCRYPTION")
	leaks := 0
	for _, e := range entries {
		full := filepath.Join(*dir, e.Name)
		data, err := vfs.ReadFile(fs, full)
		if err != nil {
			log.Printf("%s: %v", e.Name, err)
			continue
		}
		kind := classify(e.Name)
		enc := describeEncryption(data)
		fmt.Printf("%-20s %-10d %-12s %-30s\n", e.Name, e.Size, kind, enc)

		if *grep != "" && bytes.Contains(data, []byte(*grep)) {
			fmt.Printf("  !! PLAINTEXT LEAK: %q found in %s\n", *grep, e.Name)
			leaks++
		}
	}
	if *grep != "" {
		if leaks == 0 {
			fmt.Printf("\nno plaintext occurrences of %q in any stored file\n", *grep)
		} else {
			fmt.Printf("\n%d file(s) leak plaintext\n", leaks)
			os.Exit(1)
		}
	}
}

func classify(name string) string {
	switch {
	case name == "CURRENT":
		return "current"
	case strings.HasPrefix(name, "MANIFEST-"):
		return "manifest"
	case strings.HasSuffix(name, ".log"):
		return "wal"
	case strings.HasSuffix(name, ".sst"):
		return "sst"
	default:
		return "other"
	}
}

// describeEncryption sniffs the file's header.
func describeEncryption(data []byte) string {
	if id, ok := core.DEKIDFromHeader(data); ok {
		return "SHIELD per-file DEK " + id
	}
	if len(data) >= 4 && data[0] == 0x46 && data[1] == 0x43 && data[2] == 0x4e && data[3] == 0x45 {
		// "ENCF" little-endian magic 0x454e4346.
		return "EncFS instance DEK"
	}
	return "plaintext (or foreign format)"
}
