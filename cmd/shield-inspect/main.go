// Command shield-inspect examines a database directory from the storage
// administrator's (or auditor's) point of view: it classifies files, reads
// the plaintext headers, reports DEK-IDs, and — crucially — scans the raw
// bytes for plaintext leakage, which is the on-disk confidentiality check
// of the threat model.
//
// It also carries the offline corruption scrub (fsck for the database):
// per-block checksum/MAC verification, quarantine of provably corrupt files
// into lost/, and manifest repair.
//
// Usage:
//
//	shield-inspect -dir /var/lib/shield/db
//	shield-inspect -dir /var/lib/shield/db -grep "secret-substring"
//	shield-inspect scrub /var/lib/shield/db           # report only
//	shield-inspect scrub -apply /var/lib/shield/db    # quarantine + repair
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"shield/internal/core"
	"shield/internal/lsm"
	"shield/internal/vfs"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "scrub" {
		os.Exit(runScrub(os.Args[2:]))
	}
	var (
		dir  = flag.String("dir", "", "database directory")
		grep = flag.String("grep", "", "scan raw file bytes for this plaintext substring")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: shield-inspect -dir <db-dir> [-grep <plaintext>]")
		os.Exit(2)
	}

	fs := vfs.NewOS()
	entries, err := fs.List(*dir)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-20s %-10s %-12s %-30s\n", "FILE", "SIZE", "KIND", "ENCRYPTION")
	leaks := 0
	for _, e := range entries {
		full := filepath.Join(*dir, e.Name)
		data, err := vfs.ReadFile(fs, full)
		if err != nil {
			log.Printf("%s: %v", e.Name, err)
			continue
		}
		kind := classify(e.Name)
		enc := describeEncryption(data)
		fmt.Printf("%-20s %-10d %-12s %-30s\n", e.Name, e.Size, kind, enc)

		if *grep != "" && bytes.Contains(data, []byte(*grep)) {
			fmt.Printf("  !! PLAINTEXT LEAK: %q found in %s\n", *grep, e.Name)
			leaks++
		}
	}
	if *grep != "" {
		if leaks == 0 {
			fmt.Printf("\nno plaintext occurrences of %q in any stored file\n", *grep)
		} else {
			fmt.Printf("\n%d file(s) leak plaintext\n", leaks)
			os.Exit(1)
		}
	}
}

// runScrub walks the database, verifies every block checksum it can read,
// and (with -apply) quarantines provably corrupt files into lost/ and
// rewrites the MANIFEST around them. It runs keyless: encrypted files whose
// key it does not hold are reported as skipped, never quarantined, and an
// encrypted manifest makes the scrub refuse rather than guess.
func runScrub(args []string) int {
	fs := flag.NewFlagSet("scrub", flag.ExitOnError)
	apply := fs.Bool("apply", false, "quarantine corrupt files and repair the manifest (default: report only)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: shield-inspect scrub [-apply] <db-dir>")
		return 2
	}
	dir := fs.Arg(0)

	cfg := core.Config{Mode: core.ModeNone, FS: vfs.NewOS()}
	rep, err := core.Scrub(dir, cfg, lsm.ScrubOptions{
		DryRun: !*apply,
		Logger: log.Printf,
	})
	if err != nil {
		log.Printf("scrub: %v", err)
		return 1
	}
	fmt.Print(rep)
	if !*apply && !rep.Clean() {
		fmt.Println("scrub: report only — rerun with -apply to quarantine and repair")
	}
	if rep.Quarantined > 0 {
		return 1
	}
	return 0
}

func classify(name string) string {
	switch {
	case name == "CURRENT":
		return "current"
	case strings.HasPrefix(name, "MANIFEST-"):
		return "manifest"
	case strings.HasSuffix(name, ".log"):
		return "wal"
	case strings.HasSuffix(name, ".sst"):
		return "sst"
	default:
		return "other"
	}
}

// describeEncryption sniffs the file's header.
func describeEncryption(data []byte) string {
	if id, ok := core.DEKIDFromHeader(data); ok {
		return "SHIELD per-file DEK " + id
	}
	if len(data) >= 4 && data[0] == 0x46 && data[1] == 0x43 && data[2] == 0x4e && data[3] == 0x45 {
		// "ENCF" little-endian magic 0x454e4346.
		return "EncFS instance DEK"
	}
	return "plaintext (or foreign format)"
}
