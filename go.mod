module shield

go 1.22
