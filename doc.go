// Package shield is a from-scratch Go reproduction of "SHIELD: Encrypting
// Persistent Data of LSM-KVS from Monolithic to Disaggregated Storage"
// (SIGMOD 2025): an LSM-based key-value store whose persistent files (WAL,
// SST, MANIFEST) are protected by either instance-level encryption (EncFS)
// or SHIELD's per-file DEKs with compaction-driven rotation, a WAL
// encryption buffer, metadata-embedded DEK-IDs, a secure DEK cache, and a
// decentralized key-distribution service — in monolithic and disaggregated
// deployments.
//
// See internal/core for the encryption designs, internal/lsm for the
// engine, and DESIGN.md for the full system inventory.
package shield
