// Benchmarks mapping to the paper's tables and figures. Each BenchmarkXxx
// exercises the code path behind one evaluation artifact with testing.B
// semantics; the full parameter sweeps (and printed table rows) live in
// cmd/shield-bench, which reuses the same internal/experiments harness.
package shield_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"shield/internal/bench"
	"shield/internal/core"
	"shield/internal/crypt"
	"shield/internal/dstore"
	"shield/internal/kds"
	"shield/internal/lsm"
	"shield/internal/lsm/sstable"
	"shield/internal/vfs"
)

// openBenchDB opens a fresh in-memory DB for one encryption variant.
func openBenchDB(b *testing.B, mode core.Mode, walBuf int) *lsm.DB {
	b.Helper()
	cfg := core.Config{Mode: mode, FS: vfs.NewMem(), WALBufferSize: walBuf}
	switch mode {
	case core.ModeEncFS:
		dek, err := crypt.NewDEK()
		if err != nil {
			b.Fatal(err)
		}
		cfg.InstanceDEK = dek
	case core.ModeSHIELD:
		cfg.KDS = kds.NewLocal(kds.NewStore(kds.Policy{MaxFetches: 1}), "bench")
	}
	db, err := core.Open("db", cfg, lsm.Options{
		MemtableSize:        1 << 20,
		BaseLevelSize:       4 << 20,
		TargetFileSize:      1 << 20,
		L0CompactionTrigger: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

// variants mirror the paper's comparison lines.
var benchVariants = []struct {
	name   string
	mode   core.Mode
	walBuf int
}{
	{"RocksDB", core.ModeNone, 0},
	{"EncFS", core.ModeEncFS, 0},
	{"SHIELD", core.ModeSHIELD, 0},
	{"EncFS_WALBuf", core.ModeEncFS, 512},
	{"SHIELD_WALBuf", core.ModeSHIELD, 512},
}

// BenchmarkFig4_EncryptionInit measures the one-shot encryption cost
// (full initialization per call) across write sizes — Figure 4a's
// encryption line.
func BenchmarkFig4_EncryptionInit(b *testing.B) {
	key, _ := crypt.NewDEK()
	iv, _ := crypt.NewIV()
	for _, size := range []int{64, 1024, 4096, 65536} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			src := make([]byte, size)
			dst := make([]byte, size)
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if err := crypt.EncryptAt(key, iv, dst, src, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2_WALEncryption reproduces Table 2's three rows: plaintext,
// SST-only encryption, and SST+WAL encryption under fillrandom.
func BenchmarkTable2_WALEncryption(b *testing.B) {
	rows := []struct {
		name    string
		mode    core.Mode
		sstOnly bool
	}{
		{"NoEncryption", core.ModeNone, false},
		{"EncryptedSST", core.ModeSHIELD, true},
		{"EncryptedAll", core.ModeSHIELD, false},
	}
	for _, row := range rows {
		b.Run(row.name, func(b *testing.B) {
			cfg := core.Config{Mode: row.mode, FS: vfs.NewMem(), PlaintextWAL: row.sstOnly}
			if row.mode == core.ModeSHIELD {
				cfg.KDS = kds.NewLocal(kds.NewStore(kds.Policy{MaxFetches: 1}), "bench")
			}
			db, err := core.Open("db", cfg, lsm.Options{MemtableSize: 1 << 20})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			kg := bench.NewKeyGen(16)
			vg := bench.NewValueGen(100, 1)
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := rng.Uint64() % 1_000_000
				if err := db.Put(kg.Key(n), vg.Value(n)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7_FillRandom is the paper's worst case: random small writes
// under each variant (Figure 7 left).
func BenchmarkFig7_FillRandom(b *testing.B) {
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) {
			db := openBenchDB(b, v.mode, v.walBuf)
			kg := bench.NewKeyGen(16)
			vg := bench.NewValueGen(100, 1)
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := rng.Uint64() % 1_000_000
				if err := db.Put(kg.Key(n), vg.Value(n)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7_ReadRandom is Figure 7's read side: random point lookups on
// a preloaded store, where decryption hides inside engine latency.
func BenchmarkFig7_ReadRandom(b *testing.B) {
	const keys = 50_000
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) {
			db := openBenchDB(b, v.mode, v.walBuf)
			if err := bench.Preload(db, bench.Workload{KeyCount: keys}); err != nil {
				b.Fatal(err)
			}
			kg := bench.NewKeyGen(16)
			rng := rand.New(rand.NewSource(2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Get(kg.Key(rng.Uint64() % keys)); err != nil && !errors.Is(err, lsm.ErrNotFound) {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7_Mixgraph is the Mixgraph macro workload (Figure 7 right).
func BenchmarkFig7_Mixgraph(b *testing.B) {
	const keys = 20_000
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) {
			db := openBenchDB(b, v.mode, v.walBuf)
			if err := bench.Preload(db, bench.Workload{KeyCount: keys}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			r := bench.Mixgraph(db, bench.Workload{NumOps: b.N, KeyCount: keys})
			if r.Errors > 0 {
				b.Fatalf("%d errors", r.Errors)
			}
		})
	}
}

// BenchmarkFig8_MixedRatio sweeps read percentages (Figure 8).
func BenchmarkFig8_MixedRatio(b *testing.B) {
	const keys = 20_000
	for _, ratio := range []int{0, 50, 90, 100} {
		for _, mode := range []core.Mode{core.ModeNone, core.ModeSHIELD} {
			b.Run(fmt.Sprintf("read%d/%v", ratio, mode), func(b *testing.B) {
				db := openBenchDB(b, mode, 0)
				if err := bench.Preload(db, bench.Workload{KeyCount: keys}); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				r := bench.MixedRatio(db, bench.Workload{NumOps: b.N, KeyCount: keys, ReadPct: ratio})
				if r.Errors > 0 {
					b.Fatalf("%d errors", r.Errors)
				}
			})
		}
	}
}

// BenchmarkFig9_YCSB runs the six YCSB mixes under SHIELD vs plaintext
// (Figure 9).
func BenchmarkFig9_YCSB(b *testing.B) {
	const keys = 5_000
	for _, kind := range bench.AllYCSB {
		for _, mode := range []core.Mode{core.ModeNone, core.ModeSHIELD} {
			b.Run(fmt.Sprintf("%c/%v", kind, mode), func(b *testing.B) {
				db := openBenchDB(b, mode, 512)
				if err := bench.YCSBLoad(db, bench.Workload{KeyCount: keys, ValueSize: 1024}); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				r := bench.YCSB(db, kind, bench.Workload{NumOps: b.N, KeyCount: keys, ValueSize: 1024})
				if r.Errors > 0 {
					b.Fatalf("%d errors", r.Errors)
				}
			})
		}
	}
}

// BenchmarkFig10_ValueSize sweeps value sizes (Figure 10): encryption
// overhead amortizes as values grow.
func BenchmarkFig10_ValueSize(b *testing.B) {
	for _, vs := range []int{50, 100, 1000} {
		for _, mode := range []core.Mode{core.ModeNone, core.ModeSHIELD} {
			b.Run(fmt.Sprintf("v%d/%v", vs, mode), func(b *testing.B) {
				db := openBenchDB(b, mode, 0)
				kg := bench.NewKeyGen(16)
				vg := bench.NewValueGen(vs, 1)
				rng := rand.New(rand.NewSource(1))
				b.SetBytes(int64(vs + 16))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n := rng.Uint64() % 1_000_000
					if err := db.Put(kg.Key(n), vg.Value(n)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig11_WriterThreads varies client parallelism (Figure 11).
func BenchmarkFig11_WriterThreads(b *testing.B) {
	for _, threads := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d/SHIELD_WALBuf", threads), func(b *testing.B) {
			db := openBenchDB(b, core.ModeSHIELD, 512)
			b.ResetTimer()
			r := bench.FillRandom(db, bench.Workload{NumOps: b.N, Threads: threads})
			if r.Errors > 0 {
				b.Fatalf("%d errors", r.Errors)
			}
		})
	}
}

// BenchmarkFig12_BackgroundJobs varies flush/compaction parallelism
// (Figure 12).
func BenchmarkFig12_BackgroundJobs(b *testing.B) {
	for _, jobs := range []int{2, 8} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			cfg := core.Config{
				Mode:          core.ModeSHIELD,
				FS:            vfs.NewMem(),
				WALBufferSize: 512,
				KDS:           kds.NewLocal(kds.NewStore(kds.Policy{MaxFetches: 1}), "bench"),
			}
			db, err := core.Open("db", cfg, lsm.Options{
				MemtableSize:      1 << 20,
				MaxBackgroundJobs: jobs,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			b.ResetTimer()
			r := bench.FillRandom(db, bench.Workload{NumOps: b.N, Threads: 4})
			if r.Errors > 0 {
				b.Fatalf("%d errors", r.Errors)
			}
		})
	}
}

// BenchmarkFig13_ChunkedEncryption measures SHIELD's chunk-granular
// (optionally threaded) SST encryption in isolation (Figure 13).
func BenchmarkFig13_ChunkedEncryption(b *testing.B) {
	key, _ := crypt.NewDEK()
	iv, _ := crypt.NewIV()
	payload := make([]byte, 4<<20)
	for _, chunk := range []int{4 << 10, 256 << 10, 2 << 20} {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("chunk=%d/threads=%d", chunk, workers), func(b *testing.B) {
				fs := vfs.NewMem()
				b.SetBytes(int64(len(payload)))
				for i := 0; i < b.N; i++ {
					f, err := fs.Create("out")
					if err != nil {
						b.Fatal(err)
					}
					w := crypt.NewChunkedWriter(f, key, iv, chunk, workers)
					if _, err := w.Write(payload); err != nil {
						b.Fatal(err)
					}
					if err := w.Close(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig14_WALBufferSize sweeps the WAL buffer (Figure 14).
func BenchmarkFig14_WALBufferSize(b *testing.B) {
	for _, buf := range []int{0, 512, 2048} {
		b.Run(fmt.Sprintf("buf=%d", buf), func(b *testing.B) {
			db := openBenchDB(b, core.ModeSHIELD, buf)
			kg := bench.NewKeyGen(16)
			vg := bench.NewValueGen(100, 1)
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := rng.Uint64() % 1_000_000
				if err := db.Put(kg.Key(n), vg.Value(n)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig15_CompactionStyles compares compaction policies under
// SHIELD (Figure 15's write side).
func BenchmarkFig15_CompactionStyles(b *testing.B) {
	for _, style := range []lsm.CompactionStyle{lsm.CompactionLeveled, lsm.CompactionUniversal, lsm.CompactionFIFO} {
		b.Run(style.String(), func(b *testing.B) {
			cfg := core.Config{
				Mode:          core.ModeSHIELD,
				FS:            vfs.NewMem(),
				WALBufferSize: 512,
				KDS:           kds.NewLocal(kds.NewStore(kds.Policy{MaxFetches: 1}), "bench"),
			}
			db, err := core.Open("db", cfg, lsm.Options{
				MemtableSize:     1 << 20,
				CompactionStyle:  style,
				FIFOMaxTableSize: 32 << 20,
				UniversalMaxRuns: 6,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			kg := bench.NewKeyGen(16)
			vg := bench.NewValueGen(100, 1)
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := rng.Uint64() % 500_000
				if err := db.Put(kg.Key(n), vg.Value(n)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3Fig16_KDS measures DEK issue+fetch round trips through the
// network KDS at two synthetic latencies (Figure 16's underlying cost; the
// full Table 3 I/O-distribution sweep runs via cmd/shield-bench).
func BenchmarkTable3Fig16_KDS(b *testing.B) {
	for _, lat := range []time.Duration{0, 2750 * time.Microsecond} {
		b.Run(fmt.Sprintf("latency=%v", lat), func(b *testing.B) {
			store := kds.NewStore(kds.Policy{MaxFetches: 0, Latency: lat})
			store.Authorize("a")
			store.Authorize("bfetch")
			srv, err := kds.NewServer(store, "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			creator := kds.NewClient("a", srv.Addr())
			defer creator.Close()
			fetcher := kds.NewClient("bfetch", srv.Addr())
			defer fetcher.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id, _, err := creator.CreateDEK()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := fetcher.FetchDEK(id); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig17_DatasetValueSize uses the paper's stress-test shape
// (16-byte keys, 240-byte values) under SHIELD.
func BenchmarkFig17_DatasetValueSize(b *testing.B) {
	db := openBenchDB(b, core.ModeSHIELD, 512)
	kg := bench.NewKeyGen(16)
	vg := bench.NewValueGen(240, 1)
	rng := rand.New(rand.NewSource(1))
	b.SetBytes(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := rng.Uint64() % 10_000_000
		if err := db.Put(kg.Key(n), vg.Value(n)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_CompressThenEncrypt measures the compress-before-
// encrypt pipeline against encryption alone (an ablation of the design
// choice that compression must precede encryption; ciphertext does not
// compress).
func BenchmarkAblation_CompressThenEncrypt(b *testing.B) {
	for _, compress := range []bool{false, true} {
		b.Run(fmt.Sprintf("flate=%v", compress), func(b *testing.B) {
			cfg := core.Config{
				Mode: core.ModeSHIELD,
				FS:   vfs.NewMem(),
				KDS:  kds.NewLocal(kds.NewStore(kds.Policy{MaxFetches: 1}), "bench"),
			}
			opts := lsm.Options{MemtableSize: 1 << 20}
			if compress {
				opts.Compression = sstable.FlateCompression
			}
			db, err := core.Open("db", cfg, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			kg := bench.NewKeyGen(16)
			payload := bytes.Repeat([]byte("log-line "), 12) // compressible
			rng := rand.New(rand.NewSource(1))
			b.SetBytes(int64(len(payload) + 16))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Put(kg.Key(rng.Uint64()%1_000_000), payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// openDSBenchDB stands up a loopback disaggregated deployment (Figures
// 18–24's substrate) and returns the compute-side DB.
func openDSBenchDB(b *testing.B, mode core.Mode, bandwidth int64) *lsm.DB {
	b.Helper()
	storage, err := dstore.NewServer(vfs.NewMem(), "127.0.0.1:0", 0, bandwidth)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { storage.Close() })
	remote, err := dstore.Dial(storage.Addr(), 4)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { remote.Close() })
	cfg := core.Config{Mode: mode, FS: remote, WALBufferSize: 512}
	if mode == core.ModeSHIELD {
		cfg.KDS = kds.NewLocal(kds.NewStore(kds.Policy{MaxFetches: 1}), "bench")
	}
	db, err := core.Open("db", cfg, lsm.Options{MemtableSize: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

// BenchmarkFig18_Bandwidth varies the emulated link (Figure 18c).
func BenchmarkFig18_Bandwidth(b *testing.B) {
	for _, mbps := range []int64{100, 1000} {
		b.Run(fmt.Sprintf("bw=%dMbps", mbps), func(b *testing.B) {
			db := openDSBenchDB(b, core.ModeSHIELD, mbps<<20/8)
			kg := bench.NewKeyGen(16)
			vg := bench.NewValueGen(100, 1)
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := rng.Uint64() % 1_000_000
				if err := db.Put(kg.Key(n), vg.Value(n)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig19_DSFillRandom is the DS write baseline (Figure 19; Figures
// 20–24's full sweeps run via cmd/shield-bench).
func BenchmarkFig19_DSFillRandom(b *testing.B) {
	for _, mode := range []core.Mode{core.ModeNone, core.ModeSHIELD} {
		b.Run(mode.String(), func(b *testing.B) {
			db := openDSBenchDB(b, mode, 125<<20)
			kg := bench.NewKeyGen(16)
			vg := bench.NewValueGen(100, 1)
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := rng.Uint64() % 1_000_000
				if err := db.Put(kg.Key(n), vg.Value(n)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
